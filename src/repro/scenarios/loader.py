"""Load :class:`ScenarioProgram` objects from dicts and YAML documents.

The python DSL and this loader are two front-ends to the same validated
dataclasses: every key in a document maps 1:1 onto a DSL field, and all
validation lives in the dataclasses' ``__post_init__`` — the loader only
translates shapes (strings to enums, human units to seconds) and reports
unknown keys early.

A document looks like::

    name: my-federation
    days: 14
    seed: 7
    federation:
      sites:
        - {name: alpha, nodes: 16, cores_per_node: 8,
           nu_per_core_hour: 1.0, wan_bandwidth: 1.0e9}
    mix:
      total_users: 24
      weights: {batch: 2, exploratory: 1, gateway: 1}
    gateways: {n_gateways: 2, tagging_coverage: 0.8, backlog: 8}
    outages: {site_mtbf_days: 10, repair_median_hours: 4}
    recovery:
      batch: {max_attempts: 5, backoff_base: 600}
    ingest: {drop_rate: 0.1, corrupt_rate: 0.05, recovery: audit}
    load: {intensity: 1.5}
    scheduler: easy_backfill
    metascheduler: least_loaded

YAML support needs ``pyyaml``; :func:`load_program` raises a clear error when
it is missing (dict/JSON input works without it).
"""

from __future__ import annotations

from typing import Any, IO, Union

from repro.core.modalities import Modality
from repro.infra.metascheduler import SelectionStrategy
from repro.scenarios.dsl import (
    FederationDef,
    GatewayFleet,
    IngestFaults,
    LoadShape,
    ModalityMix,
    OutageRegime,
    RecoverySuite,
    ScenarioProgram,
)
from repro.users.behavior import RecoveryPolicy
from repro.workloads.scenarios import SiteSpec

__all__ = ["load_program", "program_from_dict", "program_from_yaml"]


def _reject_unknown(section: str, data: dict, allowed: set[str]) -> None:
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(
            f"unknown {section} key(s): {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _modality(name: str) -> Modality:
    try:
        return Modality(name)
    except ValueError:
        raise ValueError(
            f"unknown modality {name!r}; "
            f"choose from {[m.value for m in Modality]}"
        ) from None


def _site(data: dict) -> SiteSpec:
    _reject_unknown(
        "site",
        data,
        {"name", "nodes", "cores_per_node", "nu_per_core_hour",
         "wan_bandwidth"},
    )
    # Coerce numerics explicitly: YAML 1.1 reads "1.0e9" as a string
    # (it wants "1.0e+9"), and ints are fine for the float fields.
    return SiteSpec(
        name=str(data["name"]),
        nodes=int(data["nodes"]),
        cores_per_node=int(data["cores_per_node"]),
        nu_per_core_hour=float(data.get("nu_per_core_hour", 1.0)),
        wan_bandwidth=float(data.get("wan_bandwidth", 1.0e9)),
    )


def _federation(data: Any) -> FederationDef:
    if isinstance(data, str):
        return FederationDef(preset=data)
    if not isinstance(data, dict):
        raise ValueError(f"federation must be a preset name or mapping, got {data!r}")
    _reject_unknown("federation", data, {"preset", "sites"})
    if "sites" in data:
        sites = tuple(_site(dict(site)) for site in data["sites"])
        return FederationDef(preset=None, sites=sites)
    return FederationDef(preset=data.get("preset", "small"))


def _mix(data: dict) -> ModalityMix:
    _reject_unknown("mix", data, {"total_users", "weights"})
    weights = {
        _modality(name): float(weight)
        for name, weight in dict(data.get("weights", {})).items()
    }
    return ModalityMix(total_users=int(data["total_users"]), weights=weights)


def _recovery(data: dict) -> RecoverySuite:
    overrides = {
        _modality(name): RecoveryPolicy(**dict(knobs))
        for name, knobs in data.items()
    }
    return RecoverySuite(overrides=overrides)


_PROGRAM_KEYS = {
    "name",
    "description",
    "days",
    "seed",
    "federation",
    "mix",
    "gateways",
    "outages",
    "recovery",
    "ingest",
    "load",
    "scheduler",
    "metascheduler",
    "population_scale",
    "shards",
}


def program_from_dict(data: dict) -> ScenarioProgram:
    """Build a validated program from a plain mapping."""
    if not isinstance(data, dict):
        raise ValueError(f"scenario document must be a mapping, got {type(data).__name__}")
    _reject_unknown("scenario", data, _PROGRAM_KEYS)
    if "name" not in data:
        raise ValueError("scenario document needs a name")
    kwargs: dict[str, Any] = {
        "name": str(data["name"]),
        "description": str(data.get("description", "")),
    }
    if "days" in data:
        kwargs["days"] = float(data["days"])
    if "seed" in data:
        kwargs["seed"] = int(data["seed"])
    if "federation" in data:
        kwargs["federation"] = _federation(data["federation"])
    if "mix" in data:
        kwargs["mix"] = _mix(dict(data["mix"]))
    if "gateways" in data:
        kwargs["gateways"] = GatewayFleet(**dict(data["gateways"]))
    if "outages" in data:
        kwargs["outages"] = OutageRegime(**dict(data["outages"]))
    if "recovery" in data:
        kwargs["recovery"] = _recovery(dict(data["recovery"]))
    if "ingest" in data:
        kwargs["ingest"] = IngestFaults(**dict(data["ingest"]))
    if "load" in data:
        kwargs["load"] = LoadShape(**dict(data["load"]))
    if "scheduler" in data:
        kwargs["scheduler"] = str(data["scheduler"])
    if "metascheduler" in data:
        try:
            kwargs["metascheduler"] = SelectionStrategy(data["metascheduler"])
        except ValueError:
            raise ValueError(
                f"unknown metascheduler {data['metascheduler']!r}; choose "
                f"from {[s.value for s in SelectionStrategy]}"
            ) from None
    if "population_scale" in data:
        kwargs["population_scale"] = float(data["population_scale"])
    if "shards" in data:
        kwargs["shards"] = int(data["shards"])
    return ScenarioProgram(**kwargs)


def _yaml():
    try:
        import yaml
    except ImportError:  # pragma: no cover - environment-dependent
        raise ImportError(
            "YAML scenario documents need pyyaml (pip install pyyaml); "
            "dict-based loading via program_from_dict works without it"
        ) from None
    return yaml


def program_from_yaml(text: str) -> ScenarioProgram:
    """Parse one YAML document into a program."""
    data = _yaml().safe_load(text)
    return program_from_dict(data)


def load_program(source: Union[str, IO[str]]) -> ScenarioProgram:
    """Load a program from a YAML file path or an open stream."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return program_from_yaml(handle.read())
    return program_from_yaml(source.read())
