"""The survey channel: asking users *why* (and how wrong the answers are).

The abstract's third question — *why* users pursue their objectives — cannot
be answered from accounting data; TeraGrid used user surveys.  Surveys have
two well-known defects this model makes measurable: **non-response** (and
response propensity that varies by modality: gateway users, who never touch
TeraGrid directly, essentially never answer TeraGrid surveys) and
**self-report error** (users describe their work in the nearest prestigious
category).  Experiment T5 compares survey-derived modality shares with the
accounting measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from repro.core.modalities import MODALITY_ORDER, Modality

__all__ = ["SurveyInstrument", "SurveyResult"]

#: Default response rates per true modality: command-line users answer at
#: typical campaign rates; gateway end users are unreachable by the provider.
DEFAULT_RESPONSE_RATES: dict[Modality, float] = {
    Modality.BATCH: 0.30,
    Modality.EXPLORATORY: 0.20,
    Modality.GATEWAY: 0.02,
    Modality.ENSEMBLE: 0.30,
    Modality.VIZ: 0.40,
    Modality.COUPLED: 0.60,
}

#: Default confusion: rows are truth, columns self-report probabilities.
#: Exploratory users tend to call themselves batch users ("I run simulations");
#: ensemble users split between batch and ensemble labels.
DEFAULT_SELF_REPORT: dict[Modality, dict[Modality, float]] = {
    Modality.BATCH: {Modality.BATCH: 0.95, Modality.ENSEMBLE: 0.05},
    Modality.EXPLORATORY: {Modality.EXPLORATORY: 0.55, Modality.BATCH: 0.45},
    Modality.GATEWAY: {Modality.GATEWAY: 0.90, Modality.BATCH: 0.10},
    Modality.ENSEMBLE: {Modality.ENSEMBLE: 0.70, Modality.BATCH: 0.30},
    Modality.VIZ: {Modality.VIZ: 0.85, Modality.BATCH: 0.15},
    Modality.COUPLED: {Modality.COUPLED: 0.90, Modality.BATCH: 0.10},
}


@dataclass
class SurveyResult:
    """Outcome of one survey campaign."""

    invited: int
    responses: dict[str, Modality] = field(default_factory=dict)

    @property
    def response_rate(self) -> float:
        if self.invited == 0:
            return 0.0
        return len(self.responses) / self.invited

    def reported_counts(self) -> dict[Modality, int]:
        counts = {m: 0 for m in MODALITY_ORDER}
        for modality in self.responses.values():
            counts[modality] += 1
        return counts

    def reported_shares(self) -> dict[Modality, float]:
        counts = self.reported_counts()
        total = sum(counts.values())
        if total == 0:
            return {m: 0.0 for m in MODALITY_ORDER}
        return {m: counts[m] / total for m in MODALITY_ORDER}


class SurveyInstrument:
    """Simulates a survey campaign over a user population."""

    def __init__(
        self,
        rng: np.random.Generator,
        response_rates: Optional[Mapping[Modality, float]] = None,
        self_report: Optional[Mapping[Modality, Mapping[Modality, float]]] = None,
    ) -> None:
        self.rng = rng
        self.response_rates = dict(response_rates or DEFAULT_RESPONSE_RATES)
        self.self_report = {
            truth: dict(row)
            for truth, row in (self_report or DEFAULT_SELF_REPORT).items()
        }
        for modality, rate in self.response_rates.items():
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"response rate for {modality} out of [0,1]")
        for truth, row in self.self_report.items():
            total = sum(row.values())
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"self-report row for {truth} sums to {total}, not 1"
                )

    def run(self, true_modality_by_user: Mapping[str, Modality]) -> SurveyResult:
        """Invite every user; collect biased self-reports."""
        result = SurveyResult(invited=len(true_modality_by_user))
        for user in sorted(true_modality_by_user):
            truth = true_modality_by_user[user]
            if self.rng.random() >= self.response_rates.get(truth, 0.0):
                continue
            row = self.self_report.get(truth, {truth: 1.0})
            options = sorted(row, key=lambda m: m.value)
            probs = np.array([row[m] for m in options], dtype=float)
            reported = options[int(self.rng.choice(len(options), p=probs))]
            result.responses[user] = reported
        return result
