"""Benchmark plumbing: run an experiment once, time it, archive its output.

Each bench regenerates one table/figure of DESIGN.md §4.  The rendered text
is printed (visible with ``pytest -s``) and written to
``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can be assembled from the
archived artifacts.  Alongside the prose, each bench emits a
machine-readable ``results/BENCH_<id>.json`` (wall-clock, host cores, and —
for the serial regeneration benches, which run under the sim tracer —
sim-event throughput in events/sec) so trend tooling never has to parse
BENCH.md.
"""

import json
import os
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_LOG = Path(__file__).parent / "BENCH.md"


def _write_bench_json(name: str, payload: dict) -> Path:
    """Archive one bench's numbers as ``results/BENCH_<name>.json``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    payload = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **payload}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=repr) + "\n",
        encoding="utf-8",
    )
    return path


@pytest.fixture
def regenerate(benchmark):
    """Run ``experiment_id`` once under the benchmark timer; archive output.

    The run happens under a :class:`~repro.obs.trace.SimTracer`, so the JSON
    artifact carries the deterministic sim-event count and the derived
    events/sec throughput (the number the ROADMAP's scale-tier work tracks).
    """

    def inner(experiment_id: str, **knobs):
        from repro.experiments import run_experiment
        from repro.obs import traced_simulation

        started = time.perf_counter()
        with traced_simulation() as tracer:
            output = benchmark.pedantic(
                lambda: run_experiment(experiment_id, **knobs),
                rounds=1,
                iterations=1,
            )
        wall_seconds = time.perf_counter() - started
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(str(output) + "\n", encoding="utf-8")
        events = tracer.events_total
        json_path = _write_bench_json(
            experiment_id,
            {
                "experiment": experiment_id,
                "knobs": dict(knobs),
                "wall_seconds": wall_seconds,
                "host_cores": os.cpu_count() or 1,
                "sim_events": events,
                "events_per_second": (
                    events / wall_seconds if wall_seconds > 0 else 0.0
                ),
            },
        )
        print(f"\n{output}\n[archived to {path} and {json_path}]")
        return output

    return inner


@pytest.fixture
def parallel_speedup():
    """Time one experiment serial vs parallel; archive + log the ratio.

    Runs the experiment's task fan-out at ``jobs=1`` and ``jobs=N`` with the
    result cache off (honest wall-clock), asserts the outputs are identical
    (the determinism contract is part of the benchmark), writes the numbers
    to ``results/<id>_parallel.txt`` and appends a BENCH entry.
    """

    def inner(experiment_id: str, jobs: int = 4, **knobs):
        from repro.experiments.base import _campaign_cache
        from repro.runner import ParallelRunner

        # Both legs must start cold: the in-process campaign memo (which
        # forked workers would also inherit) would otherwise hand one leg
        # precomputed simulations and corrupt the ratio.
        _campaign_cache.clear()
        started = time.perf_counter()
        serial_output = ParallelRunner(jobs=1, use_cache=False).run(
            experiment_id, **knobs
        )
        serial_seconds = time.perf_counter() - started

        _campaign_cache.clear()
        started = time.perf_counter()
        parallel_output = ParallelRunner(jobs=jobs, use_cache=False).run(
            experiment_id, **knobs
        )
        parallel_seconds = time.perf_counter() - started

        assert parallel_output.text == serial_output.text
        assert parallel_output.data == serial_output.data

        speedup = serial_seconds / parallel_seconds if parallel_seconds else 0.0
        cores = os.cpu_count() or 1
        summary = (
            f"{experiment_id} serial {serial_seconds:.1f}s vs "
            f"{jobs}-worker {parallel_seconds:.1f}s -> {speedup:.2f}x "
            f"({cores} cores available)"
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}_parallel.txt"
        path.write_text(summary + "\n", encoding="utf-8")
        stamp = time.strftime("%Y-%m-%d")
        with BENCH_LOG.open("a", encoding="utf-8") as handle:
            handle.write(f"- {stamp}: {summary}\n")
        numbers = {
            "experiment": experiment_id,
            "knobs": dict(knobs),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "jobs": jobs,
            "host_cores": cores,
        }
        json_path = _write_bench_json(f"{experiment_id}_parallel", numbers)
        print(f"\n{summary}\n[archived to {path} and {json_path}]")
        return {
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "jobs": jobs,
            "cores": cores,
        }

    return inner
