"""Tests for named random streams and spawned child factories."""

from hypothesis import given, strategies as st

from repro.sim import RandomStreams, derive_seed


def test_same_seed_same_name_reproduces():
    a = RandomStreams(seed=7).stream("arrivals")
    b = RandomStreams(seed=7).stream("arrivals")
    assert a.random(10).tolist() == b.random(10).tolist()


def test_different_names_are_independent():
    streams = RandomStreams(seed=7)
    a = streams.stream("arrivals").random(10)
    b = streams.stream("runtimes").random(10)
    assert a.tolist() != b.tolist()


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("arrivals").random(10)
    b = RandomStreams(seed=2).stream("arrivals").random(10)
    assert a.tolist() != b.tolist()


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_adding_streams_does_not_perturb_existing():
    """Creating a new named stream must not change draws of an old one."""
    first = RandomStreams(seed=3)
    expected = first.stream("a").random(5).tolist()

    second = RandomStreams(seed=3)
    second.stream("zzz")  # extra stream created first
    assert second.stream("a").random(5).tolist() == expected


def test_names_and_contains():
    streams = RandomStreams(seed=0)
    streams.stream("one")
    assert "one" in streams
    assert "two" not in streams
    assert streams.names() == ("one",)


# -- seed derivation / spawn --------------------------------------------------

def test_derive_seed_is_deterministic():
    assert derive_seed(7, "R1:3") == derive_seed(7, "R1:3")


def test_derive_seed_distinguishes_seed_and_key():
    assert derive_seed(7, "a") != derive_seed(8, "a")
    assert derive_seed(7, "a") != derive_seed(7, "b")


@given(st.integers(min_value=0, max_value=2**32), st.integers(0, 500),
       st.integers(0, 500))
def test_derive_seed_collision_free_over_keys(seed, i, j):
    """Property: distinct keys never map to the same child seed."""
    if i != j:
        assert derive_seed(seed, f"task:{i}") != derive_seed(seed, f"task:{j}")


def test_spawn_reproduces_independent_of_creation_order():
    """A spawned child's draws depend only on (parent seed, key) — not on
    which siblings were spawned before it, mirroring how a parallel sweep
    may schedule replicates in any order."""
    parent = RandomStreams(seed=9)
    in_order = [
        parent.spawn(k).stream("arrivals").random(4).tolist() for k in range(3)
    ]
    reversed_parent = RandomStreams(seed=9)
    out_of_order = {
        k: reversed_parent.spawn(k).stream("arrivals").random(4).tolist()
        for k in reversed(range(3))
    }
    assert in_order == [out_of_order[k] for k in range(3)]


def test_spawned_children_are_mutually_independent():
    parent = RandomStreams(seed=9)
    a = parent.spawn(0).stream("arrivals").random(8).tolist()
    b = parent.spawn(1).stream("arrivals").random(8).tolist()
    assert a != b


def test_spawn_does_not_collide_with_named_streams():
    """spawn(key) and stream(name) use distinct derivations: a child keyed
    'x' must not replay the parent's stream named 'x'."""
    parent = RandomStreams(seed=9)
    named = parent.stream("x").random(8).tolist()
    spawned = RandomStreams(seed=9).spawn("x").stream("x").random(8).tolist()
    assert named != spawned


# -- BufferedStreams ----------------------------------------------------------

from repro.sim.rng import BufferedStreams  # noqa: E402


def test_buffered_streams_are_deterministic():
    a = BufferedStreams(seed=17).stream("think").exponential(4.0)
    b = BufferedStreams(seed=17).stream("think").exponential(4.0)
    assert a == b


def test_buffered_streams_differ_by_name_and_seed():
    streams = BufferedStreams(seed=17)
    assert streams.stream("a").random() != streams.stream("b").random()
    assert BufferedStreams(seed=1).stream("a").random() != \
           BufferedStreams(seed=2).stream("a").random()


def test_buffered_stream_instances_are_cached():
    streams = BufferedStreams(seed=17)
    assert streams.stream("think") is streams.stream("think")
    assert "think" in streams


def test_buffered_spawn_returns_buffered_children():
    child = BufferedStreams(seed=17).spawn("shard:0/4")
    assert isinstance(child, BufferedStreams)
    # Same derivation chain as RandomStreams.spawn, so shard seeds agree.
    assert child.seed == RandomStreams(seed=17).spawn("shard:0/4").seed
