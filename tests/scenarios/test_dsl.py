"""The scenario DSL: validation, apportionment, deterministic compilation."""

import pytest

from repro.core.modalities import MODALITY_ORDER, Modality
from repro.infra.metascheduler import SelectionStrategy
from repro.infra.scheduler import FcfsScheduler
from repro.scenarios import (
    FederationDef,
    GatewayFleet,
    IngestFaults,
    LoadShape,
    ModalityMix,
    OutageRegime,
    RecoverySuite,
    ScenarioProgram,
)
from repro.users.behavior import DEFAULT_RECOVERY, RecoveryPolicy
from repro.users.profiles import DEFAULT_PROFILES
from repro.workloads import SiteSpec

# ---------------------------------------------------------------- federation


def test_federation_requires_exactly_one_source():
    with pytest.raises(ValueError, match="exactly one"):
        FederationDef(preset=None, sites=None)
    with pytest.raises(ValueError, match="exactly one"):
        FederationDef(
            preset="small",
            sites=(SiteSpec("a", 4, 4, 1.0, 1e9),),
        )


def test_federation_rejects_duplicates_and_unknown_preset():
    dup = SiteSpec("a", 4, 4, 1.0, 1e9)
    with pytest.raises(ValueError, match="duplicate site names"):
        FederationDef(preset=None, sites=(dup, dup))
    with pytest.raises(ValueError, match="unknown federation scale"):
        FederationDef(preset="galactic")
    with pytest.raises(ValueError, match="non-empty"):
        FederationDef(preset=None, sites=())


def test_federation_preset_expands():
    assert len(FederationDef(preset="small").specs()) == 3
    assert len(FederationDef(preset="full").specs()) == 8


# ---------------------------------------------------------------- mix


def test_mix_apportionment_preserves_total_exactly():
    mix = ModalityMix(
        total_users=10,
        weights={Modality.BATCH: 1.0, Modality.EXPLORATORY: 1.0,
                 Modality.GATEWAY: 1.0},
    )
    counts = mix.counts()
    assert sum(counts.values()) == 10
    assert counts[Modality.VIZ] == 0  # absent modalities get zero


def test_mix_apportionment_is_deterministic_and_weight_ordered():
    mix = ModalityMix(
        total_users=7,
        weights={m: 1.0 for m in MODALITY_ORDER},
    )
    first = mix.counts()
    assert first == mix.counts()
    assert sum(first.values()) == 7
    # Equal weights, 7 users over 6 modalities: earliest taxonomy entries
    # take the remainder.
    assert first[Modality.BATCH] == 2
    heavy = ModalityMix(
        total_users=9,
        weights={Modality.BATCH: 8.0, Modality.VIZ: 1.0},
    )
    assert heavy.counts()[Modality.BATCH] == 8
    assert heavy.counts()[Modality.VIZ] == 1


def test_mix_validation():
    with pytest.raises(ValueError, match="total_users"):
        ModalityMix(total_users=0, weights={Modality.BATCH: 1.0})
    with pytest.raises(ValueError, match="at least one modality"):
        ModalityMix(total_users=5, weights={})
    with pytest.raises(ValueError, match="negative weight"):
        ModalityMix(total_users=5, weights={Modality.BATCH: -1.0})
    with pytest.raises(ValueError, match="positive"):
        ModalityMix(total_users=5, weights={Modality.BATCH: 0.0})
    with pytest.raises(ValueError, match="must be Modality"):
        ModalityMix(total_users=5, weights={"batch": 1.0})


# ---------------------------------------------------------------- parts


def test_gateway_fleet_validation():
    with pytest.raises(ValueError, match="n_gateways"):
        GatewayFleet(n_gateways=0)
    with pytest.raises(ValueError, match="tagging_coverage"):
        GatewayFleet(tagging_coverage=1.2)
    with pytest.raises(ValueError, match="backlog"):
        GatewayFleet(backlog=-1)
    with pytest.raises(ValueError, match="adoption_ramp_days"):
        GatewayFleet(adoption_ramp_days=-1.0)


def test_outage_regime_maps_human_units():
    regime = OutageRegime(site_mtbf_days=10.0, repair_median_hours=2.0,
                          propagation_lag_minutes=5.0)
    policy = regime.policy()
    assert policy.site_mtbf == 10.0 * 86400.0
    assert policy.repair_median == 2.0 * 3600.0
    assert regime.propagation_lag == 300.0
    with pytest.raises(ValueError):
        OutageRegime(repair_min_hours=4.0, repair_max_hours=1.0)
    with pytest.raises(ValueError, match="propagation_lag"):
        OutageRegime(propagation_lag_minutes=-1.0)


def test_load_shape_scales_think_times():
    assert LoadShape().profiles() is None  # identity: leave defaults alone
    doubled = LoadShape(intensity=2.0).profiles()
    for modality, profile in doubled.items():
        assert profile.think_time_mean == pytest.approx(
            DEFAULT_PROFILES[modality].think_time_mean / 2.0
        )
    with pytest.raises(ValueError, match="intensity"):
        LoadShape(intensity=0.0)


def test_recovery_suite_merges_over_defaults():
    custom = RecoveryPolicy(max_attempts=9)
    suite = RecoverySuite(overrides={Modality.BATCH: custom})
    policies = suite.policies()
    assert policies[Modality.BATCH] is custom
    assert policies[Modality.VIZ] == DEFAULT_RECOVERY[Modality.VIZ]
    with pytest.raises(ValueError, match="RecoveryPolicy"):
        RecoverySuite(overrides={Modality.BATCH: "retry"})


# ---------------------------------------------------------------- program


def test_program_validation():
    with pytest.raises(ValueError, match="needs a name"):
        ScenarioProgram(name="")
    with pytest.raises(ValueError, match="days must be positive"):
        ScenarioProgram(name="x", days=0.0)
    with pytest.raises(ValueError, match="unknown scheduler"):
        ScenarioProgram(name="x", scheduler="lottery")
    with pytest.raises(ValueError, match="population_scale"):
        ScenarioProgram(name="x", population_scale=0.0)
    with pytest.raises(ValueError, match="SelectionStrategy"):
        ScenarioProgram(name="x", metascheduler="random")


def test_compile_is_deterministic_and_pure():
    program = ScenarioProgram(
        name="p",
        days=3.0,
        seed=9,
        mix=ModalityMix(total_users=6, weights={Modality.BATCH: 1.0}),
        outages=OutageRegime(site_mtbf_days=1.0),
        scheduler="fcfs",
    )
    a, b = program.compile(), program.compile()
    assert a == b
    assert a.scheduler_factory is FcfsScheduler
    assert a.days == 3.0 and a.seed == 9
    assert a.population.counts[Modality.BATCH] == 6


def test_compile_overrides_seed_and_days():
    program = ScenarioProgram(name="p", days=5.0, seed=1)
    config = program.compile(seed=77, days=2.0)
    assert config.seed == 77 and config.days == 2.0
    # The program itself is untouched (frozen).
    assert program.seed == 1 and program.days == 5.0


def test_compile_pairs_outages_with_default_recovery():
    program = ScenarioProgram(
        name="p", outages=OutageRegime(site_mtbf_days=2.0)
    )
    config = program.compile()
    assert config.outages is not None
    assert config.recovery == DEFAULT_RECOVERY
    calm = ScenarioProgram(name="q")
    assert calm.compile().outages is None
    assert calm.compile().recovery is None


def test_compile_carries_gateway_fleet_and_metascheduler():
    program = ScenarioProgram(
        name="p",
        gateways=GatewayFleet(n_gateways=2, tagging_coverage=0.5,
                              backlog=7, adoption_ramp_days=2.0),
        metascheduler=SelectionStrategy.ROUND_ROBIN,
    )
    config = program.compile()
    assert config.gateway_tagging_coverage == 0.5
    assert config.gateway_backlog == 7
    assert config.gateway_adoption_ramp_days == 2.0
    assert config.population.n_gateways == 2
    assert config.metascheduler_strategy is SelectionStrategy.ROUND_ROBIN


# ---------------------------------------------------------------- ingest


def test_ingest_faults_validation():
    with pytest.raises(ValueError, match="unknown recovery level"):
        IngestFaults(recovery="hope")
    with pytest.raises(ValueError, match="drop_rate"):
        IngestFaults(drop_rate=1.5)
    with pytest.raises(ValueError, match="delay_mean_minutes"):
        IngestFaults(delay_mean_minutes=-5.0)
    with pytest.raises(ValueError, match="ack_timeout"):
        IngestFaults(ack_timeout_minutes=0.0)
    with pytest.raises(ValueError, match="max_attempts"):
        IngestFaults(max_attempts=0)


def test_ingest_faults_lower_to_regime_and_policy():
    faults = IngestFaults(
        drop_rate=0.2,
        corrupt_rate=0.1,
        delay_mean_minutes=15.0,
        recovery="retry",
        ack_timeout_minutes=20.0,
        max_attempts=3,
    )
    regime = faults.regime()
    assert regime.drop_rate == 0.2
    assert regime.corrupt_rate == 0.1
    assert regime.delay_mean == 15.0 * 60.0
    assert regime.enabled
    policy = faults.policy()
    assert policy.retransmit and not policy.reconcile
    assert policy.ack_timeout == 20.0 * 60.0
    assert policy.max_attempts == 3


def test_ingest_recovery_levels_map_to_policy_flags():
    assert IngestFaults(recovery="none").policy().retransmit is False
    assert IngestFaults(recovery="none").policy().reconcile is False
    retry = IngestFaults(recovery="retry").policy()
    assert retry.retransmit and not retry.reconcile
    audit = IngestFaults(recovery="audit").policy()
    assert audit.retransmit and audit.reconcile


def test_compile_carries_ingest_section():
    program = ScenarioProgram(
        name="p", ingest=IngestFaults(drop_rate=0.1, recovery="audit")
    )
    config = program.compile()
    assert config.packet_faults == IngestFaults(drop_rate=0.1).regime()
    assert config.ingest_recovery is not None
    assert config.ingest_recovery.reconcile
    assert config.faulty_ingest
    # no section -> both knobs stay off
    calm = ScenarioProgram(name="q").compile()
    assert calm.packet_faults is None
    assert calm.ingest_recovery is None
    assert not calm.faulty_ingest
