"""Regression: the canonical TeraGrid-2010 campaign satisfies every invariant.

The fuzzer checks arbitrary federations; this suite pins the oracle green on
the one campaign every headline experiment shares (90 days, seed 1, small
scale).  If an accounting or outage-bookkeeping change breaks conservation
here, it breaks every published number in the repo — this is the canary.
"""

import pytest

from repro.experiments.base import campaign
from repro.scenarios import check_scenario, teragrid_baseline
from repro.workloads.synthetic import CAMPAIGN_DAYS, CampaignKey


@pytest.fixture(scope="module")
def canonical():
    result = campaign()
    report = check_scenario(result)
    return result, report


def test_canonical_campaign_passes_every_invariant(canonical):
    result, report = canonical
    assert result.records, "the canonical campaign must produce records"
    assert report.ok, "\n".join(
        [report.summary()] + [str(v) for v in report.violations]
    )


def test_every_invariant_family_ran(canonical):
    _result, report = canonical
    assert {check.split(".")[0] for check in report.checks} == {
        "conservation",
        "ingest",
        "double_charge",
        "records",
        "classifier",
        "lost_work",
        "metrics",
    }
    assert all(report.checks.values())


def test_canonical_accounting_is_nontrivial(canonical):
    # Guard against a future change making the invariants vacuously true.
    result, _report = canonical
    assert len(result.records) > 100
    assert result.central.total_nu() > 0
    assert result.ledger.total_charged() > 0


def test_dsl_baseline_compiles_to_the_canonical_config():
    # The DSL's teragrid-baseline at the canonical horizon IS the campaign
    # config — the declarative and hand-built paths describe one run.
    assert (
        teragrid_baseline().compile(days=CAMPAIGN_DAYS)
        == CampaignKey.make().config()
    )
