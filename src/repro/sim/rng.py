"""Reproducible named random streams.

Every stochastic component of the simulator draws from its own named stream so
that (a) runs are reproducible for a fixed master seed and (b) adding a new
component does not perturb the draws of existing ones (a classic variance-
reduction / reproducibility idiom in parallel simulation).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    Each stream is keyed by a string name; the stream's seed is derived from
    ``(master_seed, name)`` via SHA-256, so the mapping is stable across runs,
    platforms and Python hash randomization.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            entropy = int.from_bytes(digest[:16], "big")
            generator = np.random.Generator(
                np.random.PCG64(np.random.SeedSequence(entropy))
            )
            self._streams[name] = generator
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> tuple[str, ...]:
        """Names of streams created so far."""
        return tuple(self._streams)
