"""On-disk campaign artifact store: simulate once, measure everywhere.

The parallel runner's campaign stage serializes each distinct campaign's
:class:`~repro.workloads.synthetic.CampaignArtifact` here so the measurement
stage — running in any worker process — can load it instead of re-simulating.
The store is keyed like the result cache, ``(campaign-knobs-hash, seed,
code-version)``, laid out as::

    <root>/<code-version>/<knobs-hash>-s<seed>.pkl
    <root>/quarantine/            # damaged entries, moved aside on read

Entries reuse the result cache's checksummed format (magic + SHA-256 +
pickle): a torn or bit-flipped artifact is *quarantined* on load and treated
as a miss — the caller falls back to a live simulation, so corruption can
slow a sweep down but never change its bytes.  Writes are atomic
(temp-file + fsync + rename) for the same reason, and the chaos harness's
``corrupt`` injection applies to artifact writes exactly as it does to
result-cache writes.

Per-process plumbing: workers activate the store once
(:func:`ensure_active_store`); loads are memoized per process
(:attr:`ArtifactStore._memo`) so a worker deserializes each artifact at most
once no matter how many measurement tasks it executes; and the module-level
:data:`STATS` counters let the runner aggregate dedup/fallback/load-time
telemetry across processes via worker outcomes.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.runner.cache import (
    canonical_params,
    code_version,
    default_cache_dir,
    read_entry,
)
from repro.workloads.synthetic import CampaignArtifact, CampaignKey

__all__ = [
    "ArtifactStats",
    "ArtifactStore",
    "ARTIFACT_DIR_ENV",
    "STATS",
    "active_store",
    "activated_store",
    "campaign_stage",
    "default_artifact_dir",
    "ensure_active_store",
    "in_campaign_stage",
    "record_metrics",
    "stats_snapshot",
    "stats_delta",
]

ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"
QUARANTINE_DIR = "quarantine"
_SUFFIX = ".pkl"
_MAGIC = b"RPC1"  # same framing as the result cache


def default_artifact_dir() -> Path:
    """``REPRO_ARTIFACT_DIR`` env, else ``<result-cache-dir>/artifacts``."""
    env = os.environ.get(ARTIFACT_DIR_ENV)
    if env:
        return Path(env)
    return default_cache_dir() / "artifacts"


@dataclass
class ArtifactStats:
    """Per-process artifact telemetry (see :data:`STATS`)."""

    loads: int = 0
    load_seconds: float = 0.0
    simulations: int = 0  # live run_scenario calls with a store active
    fallbacks: int = 0  # ...of which happened *outside* the campaign stage
    writes: int = 0
    quarantined: int = 0


#: Process-global counters.  Worker processes report deltas back to the
#: driver inside :class:`~repro.runner.worker.WorkerOutcome`.
STATS = ArtifactStats()

_STAT_FIELDS = (
    "loads", "load_seconds", "simulations", "fallbacks", "writes", "quarantined",
)


def stats_snapshot() -> tuple:
    return tuple(getattr(STATS, name) for name in _STAT_FIELDS)


def stats_delta(before: tuple) -> dict:
    """What changed since ``before`` (non-zero fields only; {} = nothing)."""
    delta = {}
    for name, then in zip(_STAT_FIELDS, before):
        now = getattr(STATS, name)
        if now != then:
            delta[name] = now - then
    return delta


def record_metrics(metrics, delta: dict) -> None:
    """Fold one process's counter delta into a metrics registry.

    ``metrics`` is duck-typed (``repro.obs.metrics.MetricsRegistry``) so this
    module keeps zero obs imports.  Counts land on ``artifacts.*`` counters;
    ``load_seconds`` is observed as one histogram sample per delta (its
    total is exact, its sample count is per-report, not per-load).
    """
    for name, amount in delta.items():
        if name == "load_seconds":
            metrics.histogram("artifacts.load_seconds").observe(amount)
        else:
            metrics.counter(f"artifacts.{name}").inc(amount)


# -- active-store plumbing -----------------------------------------------------

_active: Optional["ArtifactStore"] = None
_stage_depth = 0


def active_store() -> Optional["ArtifactStore"]:
    """The store :func:`repro.experiments.base.campaign` resolves through."""
    return _active


def ensure_active_store(root: str | os.PathLike) -> "ArtifactStore":
    """Activate (or reuse) the process-wide store rooted at ``root``.

    Pool workers call this at task pickup; the store (and its load memo)
    persists for the life of the worker process, so repeated tasks on one
    worker deserialize each artifact exactly once.
    """
    global _active
    root = Path(root)
    if _active is None or _active.root != root:
        _active = ArtifactStore(root=root)
    return _active


@contextmanager
def activated_store(store: Optional["ArtifactStore"]):
    """Scope ``store`` as the active one (None = leave things untouched)."""
    global _active
    if store is None:
        yield
        return
    previous = _active
    _active = store
    try:
        yield
    finally:
        _active = previous


@contextmanager
def campaign_stage():
    """Mark the current execution as stage-1 (an *expected* simulation)."""
    global _stage_depth
    _stage_depth += 1
    try:
        yield
    finally:
        _stage_depth -= 1


def in_campaign_stage() -> bool:
    return _stage_depth > 0


def note_simulation() -> None:
    """Record one live campaign simulation under an active store."""
    STATS.simulations += 1
    if not in_campaign_stage():
        STATS.fallbacks += 1


# -- the store itself ----------------------------------------------------------

@dataclass
class ArtifactStore:
    """Checksummed pickle-per-campaign store; see module docstring."""

    root: Path = field(default_factory=default_artifact_dir)
    version: str = field(default_factory=code_version)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self._memo: dict[CampaignKey, CampaignArtifact] = {}

    # -- keys ----------------------------------------------------------------
    @staticmethod
    def knobs_hash(key: CampaignKey) -> str:
        knobs = {k: v for k, v in key.asdict().items() if k != "seed"}
        material = canonical_params(knobs)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def path_for(self, key: CampaignKey) -> Path:
        name = f"{self.knobs_hash(key)}-s{key.seed}{_SUFFIX}"
        return self.root / self.version / name

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    # -- read side -----------------------------------------------------------
    def has(self, key: CampaignKey) -> bool:
        return key in self._memo or self.path_for(key).exists()

    def load(self, key: CampaignKey) -> Optional[CampaignArtifact]:
        """The stored artifact, or ``None`` on miss (damage = quarantine + miss).

        Loads are memoized per process: the deserialization cost is paid at
        most once per (worker, campaign) pair.
        """
        memoized = self._memo.get(key)
        if memoized is not None:
            return memoized
        path = self.path_for(key)
        if not path.exists():
            return None
        started = time.monotonic()
        try:
            artifact = read_entry(path)
            if not isinstance(artifact, CampaignArtifact):
                raise ValueError(f"{path}: not a CampaignArtifact")
        except Exception:
            self._quarantine(path)
            return None
        STATS.loads += 1
        STATS.load_seconds += time.monotonic() - started
        self._memo[key] = artifact
        return artifact

    def _quarantine(self, path: Path) -> None:
        """Move a damaged artifact aside (forensics beat deletion)."""
        STATS.quarantined += 1
        try:
            self.quarantine_root.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_root / path.name)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass

    # -- write side ----------------------------------------------------------
    def save(self, key: CampaignKey, artifact: CampaignArtifact) -> None:
        """Store atomically (temp file + fsync + rename), then memoize."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=_SUFFIX + ".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        STATS.writes += 1
        self._memo[key] = artifact
        self._chaos_corrupt(path)

    def _chaos_corrupt(self, path: Path) -> None:
        """Chaos-harness hook: maybe damage the artifact we just wrote."""
        from repro.runner.chaos import chaos_from_env, maybe_corrupt_entry

        config = chaos_from_env()
        if config.corrupt:
            # The path stem is the stable (knobs-hash, seed) identity.
            if maybe_corrupt_entry(config, path, f"artifact/{path.stem}"):
                # A corrupted entry must not be served from this process's
                # memo either, or the damage would go unnoticed here while
                # other workers quarantine it — drop the memo so every
                # process sees the same (damaged) bytes.
                self._memo.pop(self._key_of(path), None)

    def _key_of(self, path: Path) -> Optional[CampaignKey]:
        for key in self._memo:
            if self.path_for(key) == path:
                return key
        return None

    # -- maintenance ---------------------------------------------------------
    def entries(self) -> list[Path]:
        """Every stored artifact, current code version or not."""
        if not self.root.is_dir():
            return []
        return sorted(
            path
            for path in self.root.glob(f"*/*{_SUFFIX}")
            if path.parent.name != QUARANTINE_DIR
        )

    def current_entries(self) -> list[Path]:
        version_dir = self.root / self.version
        if not version_dir.is_dir():
            return []
        return sorted(version_dir.glob(f"*{_SUFFIX}"))

    def quarantined_entries(self) -> list[Path]:
        if not self.quarantine_root.is_dir():
            return []
        return sorted(self.quarantine_root.glob(f"*{_SUFFIX}"))

    def size_bytes(self) -> int:
        return sum(path.stat().st_size for path in self.entries())

    def gc(self) -> int:
        """Prune artifacts whose code-version no longer matches; return count.

        The version is the directory name, so a stale artifact is
        recognizable without deserializing it; emptied version directories
        are removed too.
        """
        removed = 0
        if not self.root.is_dir():
            return 0
        for version_dir in sorted(self.root.iterdir()):
            if not version_dir.is_dir() or version_dir.name in (
                self.version, QUARANTINE_DIR
            ):
                continue
            for path in version_dir.glob(f"*{_SUFFIX}"):
                path.unlink(missing_ok=True)
                removed += 1
            try:
                version_dir.rmdir()
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        removed = 0
        for path in self.entries() + self.quarantined_entries():
            path.unlink(missing_ok=True)
            removed += 1
        self._memo.clear()
        return removed
