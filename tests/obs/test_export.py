"""Chrome trace-event exporter: structure and schema validation."""

import json

import pytest

from repro.obs.export import (
    chrome_trace_from_sidecar,
    chrome_trace_from_tracer,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.telemetry import Telemetry
from repro.obs.trace import SimTracer


class _Process:
    def __init__(self, name):
        self.name = name


def _tracer_with_spans():
    tracer = SimTracer()
    first = _Process("worker:0")
    second = _Process("outage:SiteA")
    tracer.on_process_start(first, 0.0)
    tracer.on_process_start(second, 5.0)
    tracer.on_process_end(first, 12.0)  # second stays open
    tracer.on_event(object(), 12.0, 0.001)
    return tracer


def test_tracer_export_validates_and_maps_types_to_tracks():
    trace = chrome_trace_from_tracer(_tracer_with_spans())
    validate_chrome_trace(trace)
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(complete) == 2
    by_name = {e["name"]: e for e in complete}
    assert by_name["worker:0"]["dur"] == 12.0
    assert by_name["outage:SiteA"]["dur"] == 0.0  # open span, not infinite
    assert by_name["worker:0"]["tid"] != by_name["outage:SiteA"]["tid"]
    thread_names = {
        e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert thread_names == {"worker", "outage"}


def test_sidecar_export_rebases_and_validates():
    telemetry = Telemetry(run_id="r")
    telemetry.add_span("task", 1000.0, 2.0, worker=3, experiment="T1")
    telemetry.add_span("task", 1010.0, 1.0)
    telemetry.event("retry", key="k")
    trace = chrome_trace_from_sidecar(telemetry.all_records())
    validate_chrome_trace(trace)
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert min(e["ts"] for e in complete) == 0.0
    assert {e["tid"] for e in complete} == {3, 0}
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["args"]["key"] == "k"


def test_write_chrome_trace_writes_json(tmp_path):
    path = write_chrome_trace(
        chrome_trace_from_tracer(_tracer_with_spans()),
        tmp_path / "out" / "trace.json",
    )
    loaded = json.loads(path.read_text(encoding="utf-8"))
    validate_chrome_trace(loaded)
    assert loaded["displayTimeUnit"] == "ms"


def test_validate_rejects_malformed_traces():
    with pytest.raises(ValueError):
        validate_chrome_trace([])
    with pytest.raises(ValueError):
        validate_chrome_trace({"traceEvents": "nope"})
    base = {"name": "x", "pid": 1, "tid": 1, "ts": 0.0}
    with pytest.raises(ValueError, match="unknown phase"):
        validate_chrome_trace({"traceEvents": [{**base, "ph": "Z"}]})
    with pytest.raises(ValueError, match="needs 'dur'"):
        validate_chrome_trace({"traceEvents": [{**base, "ph": "X"}]})
    with pytest.raises(ValueError, match="non-integer"):
        validate_chrome_trace(
            {"traceEvents": [{**base, "ph": "i", "pid": "one"}]}
        )
    with pytest.raises(ValueError, match="non-numeric 'ts'"):
        validate_chrome_trace(
            {"traceEvents": [{"name": "x", "pid": 1, "tid": 1, "ph": "i"}]}
        )
