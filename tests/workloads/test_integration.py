"""End-to-end integration: the paper's shape results on a full pipeline run.

These are the reproduction's acceptance tests — the dominance relations from
DESIGN.md §3/§4 must hold on a medium campaign: BATCH leads user counts and
NUs; GATEWAY has the most jobs per user and the smallest jobs; instrumented
measurement recovers user counts; uninstrumented measurement collapses
gateway users.
"""

import numpy as np
import pytest

from repro.core import (
    AttributeClassifier,
    HeuristicClassifier,
    compute_metrics,
    score_classification,
)
from repro.core.evaluation import user_count_errors
from repro.core.modalities import Modality
from repro.users.population import PopulationSpec
from repro.workloads import ScenarioConfig, run_scenario


@pytest.fixture(scope="module")
def campaign():
    result = run_scenario(
        ScenarioConfig(
            scale="small",
            days=30,
            seed=1,
            population=PopulationSpec(scale=0.05),
        )
    )
    classification = AttributeClassifier().classify(result.records)
    metrics = compute_metrics(result.records, classification)
    return result, classification, metrics


def test_user_count_ordering_matches_paper(campaign):
    result, _, metrics = campaign
    users = metrics.users
    assert users[Modality.BATCH] >= users[Modality.EXPLORATORY]
    assert users[Modality.EXPLORATORY] >= users[Modality.GATEWAY]
    assert users[Modality.GATEWAY] >= users[Modality.ENSEMBLE]
    assert users[Modality.ENSEMBLE] > users[Modality.VIZ]
    assert users[Modality.VIZ] >= users[Modality.COUPLED]


def test_batch_dominates_nu_but_not_job_count(campaign):
    _, _, metrics = campaign
    assert metrics.nu_share(Modality.BATCH) > 0.5
    assert metrics.jobs[Modality.EXPLORATORY] > metrics.jobs[Modality.BATCH]


def test_gateway_highest_jobs_per_user_smallest_jobs(campaign):
    _, _, metrics = campaign
    gw_jpu = metrics.jobs_per_user(Modality.GATEWAY)
    batch_jpu = metrics.jobs_per_user(Modality.BATCH)
    assert gw_jpu > 0
    assert metrics.size_percentile(Modality.GATEWAY, 50) < (
        metrics.size_percentile(Modality.BATCH, 50)
    )
    assert metrics.size_percentile(Modality.COUPLED, 50) >= (
        metrics.size_percentile(Modality.BATCH, 50)
    )


def test_instrumented_measurement_recovers_user_counts(campaign):
    result, classification, metrics = campaign
    truth = result.active_truth_by_identity()
    true_counts = {m: 0 for m in Modality}
    for modality in truth.values():
        true_counts[modality] += 1
    errors = user_count_errors(metrics.users, true_counts)
    for modality in Modality:
        assert abs(errors[modality]) <= 0.25, (modality, errors)


def test_instrumented_job_accuracy_high(campaign):
    result, classification, _ = campaign
    summary = score_classification(classification, result.truth_by_job())
    assert summary.accuracy > 0.95
    for modality in (Modality.GATEWAY, Modality.ENSEMBLE, Modality.COUPLED):
        assert summary.recall(modality) > 0.95


def test_uninstrumented_collapses_gateway_users(campaign):
    result, _, metrics = campaign
    heuristic = HeuristicClassifier(
        known_community_accounts=result.community_accounts
    )
    classification = heuristic.classify(result.records)
    measured = classification.users_by_modality()
    n_gateways = len(result.population.gateway_names)
    assert measured[Modality.GATEWAY] <= n_gateways
    assert metrics.users[Modality.GATEWAY] > 3 * measured[Modality.GATEWAY]


def test_identity_sets_match_truth_instrumented(campaign):
    result, classification, _ = campaign
    truth = result.active_truth_by_identity()
    measured_identities = set(classification.identity_primary)
    assert measured_identities == set(truth)
    agreement = sum(
        1
        for identity, modality in truth.items()
        if classification.identity_primary[identity] is modality
    ) / len(truth)
    assert agreement > 0.9


def test_all_sites_saw_usage(campaign):
    result, _, metrics = campaign
    assert set(metrics.by_site_nu) == {p.name for p in result.providers}
