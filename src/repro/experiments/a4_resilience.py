"""A4 (ablation) — Modality resilience under unplanned site outages.

Sweeps outage severity (per-site MTBF) against the population's recovery
discipline and measures how much science each usage modality still gets
done.  Every cell is one independent federation campaign with
:class:`~repro.infra.resilience.SiteOutageInjector` processes attached to
each site, the metascheduler rerouting around believed-down machines, and
gateways queueing requests through backend outages.

Shape expectation (written before the first run):

* Metascheduled and gateway-mediated modalities degrade gracefully: their
  submissions fail over to surviving sites or wait in the gateway backlog,
  so completed work stays near the no-outage baseline even at short MTBF.
* Single-site batch work without resubmission falls off a cliff — every job
  caught by an outage is simply lost, and the loss grows with outage rate.
* Turning recovery policies on (resubmit with backoff, checkpoint/restart
  for coupled runs) recovers most of the lost work at the price of some
  wasted core-hours, and abandonments drop accordingly.
* Completed work is monotone in MTBF within a recovery discipline.
"""

from __future__ import annotations

from repro.core.modalities import MODALITY_ORDER
from repro.core.report import ascii_table, counters_footer
from repro.experiments.base import (
    ExperimentOutput,
    ExperimentTask,
    register,
    register_tasks,
    run_via_tasks,
)
from repro.infra.job import JobState
from repro.infra.resilience import OutagePolicy
from repro.infra.units import DAY, HOUR
from repro.users.behavior import DEFAULT_RECOVERY, no_recovery
from repro.users.population import PopulationSpec
from repro.workloads.synthetic import ScenarioConfig, run_scenario

__all__ = ["run"]

_SEED = 37
_DAYS = 20.0
_MTBF_DAYS = (6.0, 2.0)
_RECOVERIES = ("none", "retry")


def _cells(mtbf_days: tuple[float, ...], recoveries: tuple[str, ...]):
    """Cell grid: the no-outage baseline, then MTBF x recovery."""
    cells: list[tuple[float | None, str]] = [(None, "none")]
    for mtbf in mtbf_days:
        for recovery in recoveries:
            cells.append((float(mtbf), recovery))
    return cells


def _cell_label(mtbf: float | None, recovery: str) -> str:
    if mtbf is None:
        return "no outages"
    return f"MTBF {mtbf:g}d / {recovery}"


def _run_cell(mtbf_days: float | None, recovery: str, days: float, seed: int) -> dict:
    outages = None
    if mtbf_days is not None:
        outages = OutagePolicy(
            site_mtbf=mtbf_days * DAY,
            partial_mtbf=2 * mtbf_days * DAY,
        )
    policies = DEFAULT_RECOVERY if recovery == "retry" else no_recovery()
    result = run_scenario(
        ScenarioConfig(
            scale="small",
            days=days,
            seed=seed,
            population=PopulationSpec(scale=0.05),
            outages=outages,
            recovery=policies,
            gateway_backlog=32,
        )
    )

    completed_ch = 0.0
    wasted_ch = 0.0
    by_modality = {m.value: 0.0 for m in MODALITY_ORDER}
    for provider in result.providers:
        for job in provider.scheduler.completed:
            elapsed = job.elapsed or 0.0
            core_hours = job.cores * elapsed / HOUR
            if job.state is JobState.COMPLETED:
                completed_ch += core_hours
                if job.true_modality in by_modality:
                    by_modality[job.true_modality] += core_hours
            elif job.state is JobState.FAILED and not job.will_fail:
                wasted_ch += core_hours

    # Time-to-recover: per full outage, the gap between the site coming back
    # and the first job start there after repair (demand returning).
    ttr_samples = []
    starts_by_site: dict[str, list[float]] = {}
    for provider in result.providers:
        starts_by_site[provider.name] = sorted(
            job.start_time
            for job in provider.scheduler.completed
            if job.start_time is not None
        )
    for injector in result.injectors:
        for outage in injector.outages:
            if outage.kind != "full" or outage.end is None:
                continue
            after = [s for s in starts_by_site[outage.site] if s >= outage.end]
            if after:
                ttr_samples.append(after[0] - outage.end)

    ctx = result.context
    meta = result.metascheduler
    return {
        "label": _cell_label(mtbf_days, recovery),
        "mtbf_days": mtbf_days,
        "recovery": recovery,
        "completed_ch": completed_ch,
        "wasted_ch": wasted_ch,
        "by_modality": by_modality,
        "outages": sum(i.outage_count for i in result.injectors),
        "jobs_killed": sum(i.jobs_killed for i in result.injectors),
        "reroutes": meta.reroutes,
        "requeues": meta.requeues,
        "resubmissions": sum(ctx.resubmissions.values()),
        "abandonments": sum(ctx.abandonments.values()),
        "deferrals": sum(ctx.deferrals.values()),
        "gw_queued": sum(g.requests_queued for g in result.gateways.values()),
        "gw_shed": sum(g.requests_shed for g in result.gateways.values()),
        "gw_drained": sum(
            g.backlog_submitted for g in result.gateways.values()
        ),
        "ttr_mean_hours": (
            sum(ttr_samples) / len(ttr_samples) / HOUR if ttr_samples else None
        ),
        "ttr_count": len(ttr_samples),
    }


def plan(
    seed: int = _SEED,
    days: float = _DAYS,
    mtbf_days: tuple[float, ...] = _MTBF_DAYS,
    recoveries: tuple[str, ...] = _RECOVERIES,
) -> list[ExperimentTask]:
    tasks = []
    for mtbf, recovery in _cells(tuple(mtbf_days), tuple(recoveries)):
        tasks.append(
            ExperimentTask(
                experiment_id="A4",
                index=len(tasks),
                params={
                    "mtbf_days": mtbf,
                    "recovery": recovery,
                    "days": float(days),
                    "seed": int(seed),
                },
                seed=int(seed),
            )
        )
    return tasks


def execute(params: dict) -> dict:
    return _run_cell(
        params["mtbf_days"], params["recovery"], params["days"], params["seed"]
    )


def merge(
    partials: list[dict],
    seed: int = _SEED,
    days: float = _DAYS,
    mtbf_days: tuple[float, ...] = _MTBF_DAYS,
    recoveries: tuple[str, ...] = _RECOVERIES,
) -> ExperimentOutput:
    baseline = partials[0]
    rows = []
    for cell in partials:
        ttr = cell["ttr_mean_hours"]
        rows.append(
            [
                cell["label"],
                f"{cell['completed_ch']:,.0f}",
                f"{100 * cell['completed_ch'] / baseline['completed_ch']:.1f}%"
                if baseline["completed_ch"] > 0
                else "n/a",
                f"{cell['wasted_ch']:,.0f}",
                f"{cell['outages']}",
                f"{cell['abandonments']}",
                f"{60 * ttr:.1f}m" if ttr is not None else "-",
            ]
        )
    table_a = ascii_table(
        [
            "cell",
            "completed core-h",
            "vs baseline",
            "wasted core-h",
            "outages",
            "abandoned",
            "time-to-recover",
        ],
        rows,
        title=(
            f"A4a — Completed science vs outage rate and recovery discipline "
            f"({days:g}-day federation campaigns)"
        ),
    )

    # Per-modality retention at the harshest MTBF, with and without recovery.
    headers = ["modality", *(cell["label"] for cell in partials[1:])]
    retention_rows = []
    for modality in MODALITY_ORDER:
        base = baseline["by_modality"].get(modality.value, 0.0)
        row = [modality.value]
        for cell in partials[1:]:
            if base > 0:
                got = cell["by_modality"].get(modality.value, 0.0)
                row.append(f"{100 * got / base:.0f}%")
            else:
                row.append("-")
        retention_rows.append(row)
    table_b = ascii_table(
        headers,
        retention_rows,
        title="A4b — Per-modality completed work retained (vs no-outage baseline)",
    )

    footer = counters_footer(
        {
            "outages": sum(c["outages"] for c in partials),
            "jobs_killed": sum(c["jobs_killed"] for c in partials),
            "reroutes": sum(c["reroutes"] for c in partials),
            "requeues": sum(c["requeues"] for c in partials),
            "resubmissions": sum(c["resubmissions"] for c in partials),
            "abandonments": sum(c["abandonments"] for c in partials),
            "deferrals": sum(c["deferrals"] for c in partials),
            "gateway_queued": sum(c["gw_queued"] for c in partials),
            "gateway_shed": sum(c["gw_shed"] for c in partials),
            "gateway_drained": sum(c["gw_drained"] for c in partials),
        }
    )
    text = "\n\n".join([table_a, table_b, footer])
    return ExperimentOutput(
        experiment_id="A4",
        title="Resilience ablation under unplanned site outages",
        text=text,
        data={cell["label"]: cell for cell in partials},
    )


register_tasks("A4", plan=plan, execute=execute, merge=merge)


@register("A4")
def run(
    seed: int = _SEED,
    days: float = _DAYS,
    mtbf_days: tuple[float, ...] = _MTBF_DAYS,
    recoveries: tuple[str, ...] = _RECOVERIES,
) -> ExperimentOutput:
    return run_via_tasks(
        "A4",
        seed=seed,
        days=days,
        mtbf_days=mtbf_days,
        recoveries=recoveries,
    )
