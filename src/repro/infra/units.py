"""Time and charging units.

Simulated time is in **seconds**.  Usage is charged in **normalized units**
(NUs), TeraGrid's cross-site currency: local service units (core-hours)
times a per-resource normalization factor reflecting per-core performance
relative to a reference system.
"""

from __future__ import annotations

MINUTE = 60.0
HOUR = 3600.0
DAY = 24 * HOUR
WEEK = 7 * DAY
QUARTER = 91 * DAY  # calendar quarter, to the day

#: Normalization of the reference system (1 core-hour -> this many NUs).
REFERENCE_NU_PER_CORE_HOUR = 1.0


def core_hours(cores: int, elapsed_seconds: float) -> float:
    """Core-hours consumed by ``cores`` over ``elapsed_seconds``."""
    if cores < 0 or elapsed_seconds < 0:
        raise ValueError("cores and elapsed_seconds must be non-negative")
    return cores * elapsed_seconds / HOUR


def nu_charge(cores: int, elapsed_seconds: float, nu_per_core_hour: float) -> float:
    """Normalized units charged for a run on a given resource."""
    if nu_per_core_hour <= 0:
        raise ValueError(f"nu_per_core_hour must be positive, got {nu_per_core_hour}")
    return core_hours(cores, elapsed_seconds) * nu_per_core_hour
