"""Tests for usage records, the central DB and the AMIE feed."""

import pytest

from repro.infra.accounting import AmieFeed, CentralAccountingDB, UsageRecord
from repro.infra.job import Job, JobState
from repro.infra.units import HOUR
from repro.sim import Simulator


def terminal_job(**kwargs):
    defaults = dict(
        user="alice", account="acct", cores=4, walltime=3600.0, true_runtime=1800.0
    )
    defaults.update(kwargs)
    job = Job(**defaults)
    job.state = JobState.COMPLETED
    job.resource = "mach"
    job.submit_time = 0.0
    job.start_time = 100.0
    job.end_time = 1900.0
    job.charged_nu = 2.0
    return job


def test_record_from_job_copies_observables():
    job = terminal_job(attributes={"submit_interface": "login"})
    record = UsageRecord.from_job(job)
    assert record.job_id == job.job_id
    assert record.user == "alice"
    assert record.resource == "mach"
    assert record.wait_time == 100.0
    assert record.elapsed == 1800.0
    assert record.core_hours == pytest.approx(4 * 1800.0 / HOUR)
    assert record.attributes == {"submit_interface": "login"}
    assert record.ran


def test_record_attributes_are_a_copy():
    job = terminal_job(attributes={"k": "v"})
    record = UsageRecord.from_job(job)
    job.attributes["k"] = "changed"
    assert record.attributes["k"] == "v"


def test_record_has_no_ground_truth_fields():
    job = terminal_job(true_modality="batch", true_user="secret")
    record = UsageRecord.from_job(job)
    assert not hasattr(record, "true_modality")
    assert not hasattr(record, "true_user")
    assert "true_modality" not in record.attributes


def test_record_rejects_non_terminal_job():
    job = terminal_job()
    job.state = JobState.RUNNING
    with pytest.raises(ValueError):
        UsageRecord.from_job(job)


def test_cancelled_before_start_record():
    job = terminal_job()
    job.state = JobState.CANCELLED
    job.start_time = None
    record = UsageRecord.from_job(job)
    assert not record.ran
    assert record.wait_time is None
    assert record.elapsed == 0.0
    assert record.core_hours == 0.0


def test_central_db_indices():
    db = CentralAccountingDB()
    r1 = UsageRecord.from_job(terminal_job(user="alice"))
    r2 = UsageRecord.from_job(terminal_job(user="bob"))
    db.ingest([r1, r2])
    assert len(db) == 2
    assert db.users() == ["alice", "bob"]
    assert db.resources() == ["mach"]
    assert [r.user for r in db.records_of_user("alice")] == ["alice"]
    assert len(db.records_on_resource("mach")) == 2
    assert len(db.records_of_account("acct")) == 2
    assert db.total_nu() == pytest.approx(4.0)


def test_central_db_skips_duplicate_job():
    """A replayed record is a counted no-op, not an exception."""
    db = CentralAccountingDB()
    record = UsageRecord.from_job(terminal_job())
    assert db.ingest([record]) == (1, 0)
    assert db.ingest([record]) == (0, 1)
    assert len(db) == 1
    assert db.duplicates_skipped == 1


def test_central_db_ingest_is_atomic_on_mid_batch_duplicate():
    """A duplicate mid-batch must not leave earlier records half-indexed."""
    db = CentralAccountingDB()
    first = UsageRecord.from_job(terminal_job(user="alice"))
    fresh = UsageRecord.from_job(terminal_job(user="bob"))
    later = UsageRecord.from_job(terminal_job(user="carol"))
    db.ingest([first])
    added, duplicates = db.ingest([fresh, first, later])
    assert (added, duplicates) == (2, 1)
    assert len(db) == 3
    assert db.users() == ["alice", "bob", "carol"]
    # every index saw exactly the fresh records, once
    assert len(db.records_of_user("bob")) == 1
    assert len(db.records_of_user("carol")) == 1
    assert len(db.records_of_account("acct")) == 3


def test_central_db_skips_duplicate_within_one_batch():
    db = CentralAccountingDB()
    record = UsageRecord.from_job(terminal_job())
    assert db.ingest([record, record]) == (1, 1)
    assert len(db) == 1


def test_amie_feed_batches_by_interval():
    sim = Simulator()
    db = CentralAccountingDB()
    batches = []
    feed = AmieFeed(sim, db, interval=6 * HOUR, on_flush=batches.append)
    feed.publish(UsageRecord.from_job(terminal_job()))
    feed.publish(UsageRecord.from_job(terminal_job()))
    assert feed.buffered == 2
    assert len(db) == 0  # not yet flushed
    sim.run(until=6 * HOUR + 1)
    assert len(db) == 2
    assert feed.buffered == 0
    assert len(batches) == 1 and len(batches[0]) == 2


def test_amie_drain_flushes_immediately():
    sim = Simulator()
    db = CentralAccountingDB()
    feed = AmieFeed(sim, db, interval=6 * HOUR)
    feed.publish(UsageRecord.from_job(terminal_job()))
    assert feed.drain() == 1
    assert feed.drain() == 0
    assert len(db) == 1


def test_amie_interval_validation():
    with pytest.raises(ValueError):
        AmieFeed(Simulator(), CentralAccountingDB(), interval=0.0)
    with pytest.raises(ValueError):
        AmieFeed(Simulator(), CentralAccountingDB(), interval=-1.0)


def test_amie_drain_rebuffers_batch_on_ingest_failure():
    """A central-DB error delays the batch instead of losing it."""

    class FlakyCentral(CentralAccountingDB):
        def __init__(self):
            super().__init__()
            self.fail_next = True

        def ingest(self, records):
            if self.fail_next:
                self.fail_next = False
                raise RuntimeError("tgcdb briefly unavailable")
            return super().ingest(records)

    sim = Simulator()
    db = FlakyCentral()
    feed = AmieFeed(sim, db, interval=6 * HOUR)
    early = UsageRecord.from_job(terminal_job(user="alice"))
    feed.publish(early)
    with pytest.raises(RuntimeError):
        feed.drain()
    # nothing lost or counted as sent; the batch is buffered again
    assert feed.buffered == 1
    assert feed.batches_sent == 0
    assert len(db) == 0
    # records published after the failure queue *behind* the failed batch
    late = UsageRecord.from_job(terminal_job(user="bob"))
    feed.publish(late)
    assert feed.drain() == 2
    assert [r.user for r in db.all_records()] == ["alice", "bob"]


def test_amie_feed_flushes_every_interval():
    """Cadence: one flush per interval boundary, each carrying its window."""
    sim = Simulator()
    db = CentralAccountingDB()
    batches = []
    feed = AmieFeed(sim, db, interval=6 * HOUR, on_flush=batches.append)

    def producer(sim):
        for hour in (1, 5, 8, 13):
            yield sim.timeout(hour * HOUR - sim.now)
            feed.publish(UsageRecord.from_job(terminal_job()))

    sim.process(producer(sim))
    sim.run(until=18 * HOUR + 1)
    # windows: (0,6]h -> 2 records, (6,12]h -> 1, (12,18]h -> 1
    assert [len(b) for b in batches] == [2, 1, 1]
    assert feed.batches_sent == 3
    assert len(db) == 4


def test_amie_feed_empty_interval_sends_no_batch():
    sim = Simulator()
    db = CentralAccountingDB()
    batches = []
    feed = AmieFeed(sim, db, interval=6 * HOUR, on_flush=batches.append)
    sim.run(until=24 * HOUR)
    assert batches == []
    assert feed.batches_sent == 0


def test_amie_on_flush_observes_batches_in_publish_order():
    sim = Simulator()
    db = CentralAccountingDB()
    seen = []
    feed = AmieFeed(
        sim, db, interval=HOUR, on_flush=lambda b: seen.extend(r.user for r in b)
    )
    for user in ("alice", "bob", "carol"):
        feed.publish(UsageRecord.from_job(terminal_job(user=user)))
    sim.run(until=HOUR + 1)
    assert seen == ["alice", "bob", "carol"]


def test_amie_end_of_run_drain_flushes_partial_window():
    """The horizon rarely lands on a flush boundary; drain picks up the tail."""
    sim = Simulator()
    db = CentralAccountingDB()
    feed = AmieFeed(sim, db, interval=6 * HOUR)

    def producer(sim):
        yield sim.timeout(7 * HOUR)
        feed.publish(UsageRecord.from_job(terminal_job()))

    sim.process(producer(sim))
    sim.run(until=8 * HOUR)  # past one flush, before the next
    assert feed.buffered == 1
    assert feed.drain() == 1
    assert feed.buffered == 0
    assert len(db) == 1
