"""Tests for the runner's two-stage DAG: campaign stage + measurement stage.

The acceptance contract: with an artifact store attached, a sweep simulates
each distinct campaign key exactly once (asserted via the dedup counters)
and its merged outputs are byte-identical to a store-disabled serial run —
including when artifacts already exist (resume) and when the chaos harness
corrupts them (quarantine -> live fallback).
"""

import pytest

from repro.experiments.base import (
    CAMPAIGN_STAGE_ID,
    _campaign_cache,
    campaign_key,
    campaign_plans,
    plan_tasks,
    task_campaign_keys,
)
from repro.runner import ArtifactStore, ParallelRunner, ResultCache


@pytest.fixture(autouse=True)
def fresh_campaign_memo():
    """Isolate the process-global campaign memo.

    The dedup counters distinguish "simulated" from "served by the memo";
    leftovers from other tests (inherited by fork-started workers too)
    would make those counts nondeterministic.
    """
    saved = dict(_campaign_cache)
    _campaign_cache.clear()
    yield
    _campaign_cache.clear()
    _campaign_cache.update(saved)

#: T1/T2/T3 at one horizon: twelve measurement tasks, ONE distinct campaign.
_SHARED = [("T1", {"days": 12.0}), ("T2", {"days": 12.0}), ("T3", {"days": 12.0})]


def _texts(outputs):
    return [(o.experiment_id, o.title, o.text, repr(o.data)) for o in outputs]


@pytest.fixture(scope="module")
def reference():
    """Store-off serial outputs: the byte-identity baseline."""
    runner = ParallelRunner(jobs=1, use_cache=False)
    return _texts(runner.run_many(_SHARED))


# -- campaign dependency declarations ------------------------------------------

def test_every_campaign_reader_declares_its_campaigns():
    for experiment_id in ("T1", "T5", "F1", "F6", "R1"):
        assert experiment_id in campaign_plans


def test_shared_horizon_collapses_to_one_key():
    keys = set()
    for experiment_id, knobs in _SHARED:
        for task in plan_tasks(experiment_id, **knobs):
            keys.update(task_campaign_keys(task))
    assert len(keys) == 1


def test_int_and_float_spellings_share_a_key():
    (int_key,) = task_campaign_keys(plan_tasks("T1", days=12)[0])
    (float_key,) = task_campaign_keys(plan_tasks("T1", days=12.0)[0])
    assert int_key == float_key


def test_f6_declares_one_campaign_per_coverage():
    tasks = plan_tasks("F6", days=4.0, coverages=(0.0, 1.0))
    keys = [task_campaign_keys(task) for task in tasks]
    assert all(len(k) == 1 for k in keys)
    assert keys[0] != keys[1]


def test_r1_declares_one_campaign_per_seed():
    tasks = plan_tasks("R1", days=4.0, seeds=(1, 2))
    assert task_campaign_keys(tasks[0])[0].seed == 1
    assert task_campaign_keys(tasks[1])[0].seed == 2


# -- dedup + byte-identity (the acceptance tests) ------------------------------

def test_serial_store_simulates_each_key_once(tmp_path, reference):
    runner = ParallelRunner(
        jobs=1, use_cache=False, artifacts=ArtifactStore(root=tmp_path)
    )
    outputs = runner.run_many(_SHARED)
    assert runner.campaign_stats["distinct"] == 1
    assert runner.campaign_stats["simulated"] == 1
    assert runner.campaign_stats["fallbacks"] == 0
    assert runner.campaign_failures == []
    assert _texts(outputs) == reference


def test_parallel_store_simulates_each_key_once(tmp_path, reference):
    runner = ParallelRunner(
        jobs=2, use_cache=False, artifacts=ArtifactStore(root=tmp_path)
    )
    outputs = runner.run_many(_SHARED)
    assert runner.campaign_stats["distinct"] == 1
    assert runner.campaign_stats["simulated"] == 1
    assert runner.campaign_stats["fallbacks"] == 0
    assert runner.campaign_stats["loads"] >= 1  # measured from the artifact
    assert _texts(outputs) == reference


def test_existing_artifacts_are_reused_not_resimulated(tmp_path, reference):
    store_dir = tmp_path / "store"
    first = ParallelRunner(
        jobs=1, use_cache=False, artifacts=ArtifactStore(root=store_dir)
    )
    first.run_many(_SHARED)

    second = ParallelRunner(
        jobs=1, use_cache=False, artifacts=ArtifactStore(root=store_dir)
    )
    outputs = second.run_many(_SHARED)
    assert second.campaign_stats["simulated"] == 0
    assert second.campaign_stats["reused"] == 1
    assert _texts(outputs) == reference


def test_partial_store_resumes_mid_campaign_stage(tmp_path):
    """A run killed mid-stage leaves some artifacts; the next run completes
    only the missing ones (that is resume for stage 1)."""
    store_dir = tmp_path / "store"
    warmup = ParallelRunner(
        jobs=1, use_cache=False, artifacts=ArtifactStore(root=store_dir)
    )
    warmup.run_many([("R1", {"days": 4.0, "seeds": (1,)})])
    assert warmup.campaign_stats["simulated"] == 1

    resumed = ParallelRunner(
        jobs=1, use_cache=False, artifacts=ArtifactStore(root=store_dir)
    )
    resumed.run_many([("R1", {"days": 4.0, "seeds": (1, 2, 3)})])
    assert resumed.campaign_stats["distinct"] == 3
    assert resumed.campaign_stats["reused"] == 1
    assert resumed.campaign_stats["simulated"] == 2


def test_stage_timings_are_recorded(tmp_path):
    runner = ParallelRunner(
        jobs=1, use_cache=False, artifacts=ArtifactStore(root=tmp_path)
    )
    runner.run_many([("T1", {"days": 8.0})])
    assert set(runner.stage_seconds) == {"plan", "campaign", "measure"}
    assert runner.stage_seconds["campaign"] > 0


def test_no_store_means_no_campaign_stage():
    runner = ParallelRunner(jobs=1, use_cache=False)
    runner.run_many([("T1", {"days": 8.0})])
    assert "campaign" not in runner.stage_seconds
    assert runner.campaign_stats["distinct"] == 0


# -- store + result cache interaction ------------------------------------------

def test_campaign_tasks_never_enter_the_result_cache(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    runner = ParallelRunner(
        jobs=1, cache=cache, artifacts=ArtifactStore(root=tmp_path / "store")
    )
    runner.run_many([("R1", {"days": 4.0, "seeds": (1, 2)})])
    # Exactly the two measurement tasks were cached; the campaign
    # pseudo-tasks persist through the artifact store instead.
    assert len(cache.entries()) == 2
    hit, _ = cache.get(
        CAMPAIGN_STAGE_ID,
        {CAMPAIGN_STAGE_ID: campaign_key(days=4.0, seed=1).asdict()},
        1,
    )
    assert not hit


def test_cached_measurements_skip_the_campaign_stage_entirely(tmp_path):
    cache = ResultCache(root=tmp_path / "cache")
    store = ArtifactStore(root=tmp_path / "store")
    ParallelRunner(jobs=1, cache=cache, artifacts=store).run_many(
        [("T1", {"days": 8.0})]
    )
    rerun = ParallelRunner(
        jobs=1, cache=ResultCache(root=tmp_path / "cache"),
        artifacts=ArtifactStore(root=tmp_path / "store"),
    )
    rerun.run_many([("T1", {"days": 8.0})])
    # All measurements came from the result cache: nothing was pending, so
    # no campaign stage ran at all.
    assert rerun.campaign_stats["distinct"] == 0
    assert "campaign" not in rerun.stage_seconds


# -- chaos: artifact corruption must not change bytes --------------------------

def test_corrupted_artifacts_fall_back_to_live_simulation(
    tmp_path, monkeypatch, reference
):
    monkeypatch.setenv("REPRO_CHAOS", "corrupt:1.0")
    runner = ParallelRunner(
        jobs=2, use_cache=False, artifacts=ArtifactStore(root=tmp_path)
    )
    outputs = runner.run_many(_SHARED)
    # Every artifact write was corrupted: stage 2 quarantines on load and
    # re-simulates live in the worker — slower, byte-identical.
    assert _texts(outputs) == reference
    assert runner.campaign_stats["fallbacks"] >= 1
    assert runner.failures == []
