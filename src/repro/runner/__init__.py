"""Parallel experiment execution: fault-tolerant fan-out plus result caching.

The runner treats every experiment as a list of independent tasks (declared
via :func:`repro.experiments.base.register_tasks`, or a synthesized
single-task plan) and executes them either inline (``jobs=1``) or across a
:class:`concurrent.futures.ProcessPoolExecutor`.  Partial results are merged
in task-index order, so the assembled output is byte-identical regardless of
worker count or scheduling order.  An on-disk :class:`ResultCache` keyed by
``(experiment, params-hash, seed, code-version)`` makes re-running a sweep
recompute only what changed.

With an :class:`ArtifactStore` attached, execution becomes a two-stage task
DAG: the distinct campaigns the planned tasks depend on (declared via
:func:`repro.experiments.base.register_campaigns`) are simulated exactly
once each into checksummed on-disk :class:`CampaignArtifact` snapshots, and
the measurement tasks then fan out over the stored artifacts instead of
re-simulating per task — see :mod:`repro.runner.artifacts`.

Fault tolerance (see :mod:`repro.runner.parallel` for the full contract):
transient infrastructure failures — killed workers, wall-clock timeouts,
wedged pools — are retried with deterministic backoff and ultimately
degraded to in-process execution, so they never change the output bytes;
task exceptions are contained as structured :class:`TaskFailure` records; a
:class:`RunJournal` makes interrupted sweeps resumable; and the
:mod:`repro.runner.chaos` harness (``REPRO_CHAOS=kill:p,hang:p,corrupt:p``)
injects exactly these failures to prove it.
"""

from repro.runner.artifacts import (
    ArtifactStats,
    ArtifactStore,
    default_artifact_dir,
)
from repro.runner.cache import CacheStats, ResultCache, code_version
from repro.runner.chaos import ChaosConfig, chaos_from_env
from repro.runner.journal import RunJournal, default_runs_dir, new_run_id, task_key
from repro.runner.parallel import ParallelRunner, resolve_jobs
from repro.runner.retry import RetryPolicy, TaskFailure

__all__ = [
    "ArtifactStats",
    "ArtifactStore",
    "CacheStats",
    "ChaosConfig",
    "ParallelRunner",
    "ResultCache",
    "RetryPolicy",
    "RunJournal",
    "TaskFailure",
    "chaos_from_env",
    "code_version",
    "default_artifact_dir",
    "default_runs_dir",
    "new_run_id",
    "resolve_jobs",
    "task_key",
]
