"""Shared hypothesis strategies for the whole test suite.

One home for the generators that several suites used to re-declare
privately: batch-workload job specs (scheduler invariants, backfill
acceptance, policy completeness), synthetic usage records (SWF round-trip),
and the distribution-parameter ranges (sim distributions).  The
scenario-space strategies live in :mod:`repro.scenarios.strategies` (they
are shipped, the ``repro fuzz`` CLI needs them) and are re-exported here so
test code has a single import point.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.infra.accounting import UsageRecord
from repro.infra.job import JobState
from repro.scenarios.strategies import (  # noqa: F401  (re-exports)
    federations,
    gateway_fleets,
    ingest_faults,
    modality_mixes,
    outage_regimes,
    recovery_suites,
    scenario_programs,
    site_specs,
)

__all__ = [
    "federations",
    "gateway_fleets",
    "ingest_faults",
    "job_specs",
    "lognormal_medians",
    "lognormal_sigmas",
    "modality_mixes",
    "outage_regimes",
    "recovery_suites",
    "scenario_programs",
    "site_specs",
    "usage_records",
]

#: Parameter ranges for the bounded-lognormal sampling helpers.
lognormal_medians = st.floats(min_value=0.1, max_value=1e4)
lognormal_sigmas = st.floats(min_value=0.0, max_value=3.0)


def job_specs(
    min_size: int = 2,
    max_size: int = 25,
    max_cores: int = 8,
    max_walltime: int = 200,
    max_offset: int = 100,
    with_fraction: bool = True,
):
    """Lists of batch-job tuples: (cores, walltime[, runtime fraction], offset).

    The common workload generator for scheduler property tests.  With
    ``with_fraction`` each spec carries the fraction of its walltime the job
    really runs; without it, specs are (cores, walltime, offset) and the
    caller decides runtimes.
    """
    fields = [
        st.integers(min_value=1, max_value=max_cores),  # cores
        st.integers(min_value=1, max_value=max_walltime),  # walltime
    ]
    if with_fraction:
        fields.append(st.floats(min_value=0.05, max_value=1.0))
    fields.append(st.integers(min_value=0, max_value=max_offset))  # arrival
    return st.lists(
        st.tuples(*fields), min_size=min_size, max_size=max_size
    )


@st.composite
def usage_records(draw) -> UsageRecord:
    """One plausible accounting record (ran or never-started)."""
    job_id = draw(st.integers(min_value=1, max_value=10**6))
    submit = draw(st.integers(min_value=0, max_value=10**6))
    ran = draw(st.booleans())
    wait = draw(st.integers(min_value=0, max_value=10**5)) if ran else None
    elapsed = draw(st.integers(min_value=1, max_value=10**5)) if ran else 0
    cores = draw(st.integers(min_value=1, max_value=4096))
    state = draw(
        st.sampled_from(
            [JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED]
        )
        if ran
        else st.just(JobState.CANCELLED)
    )
    attributes = draw(
        st.dictionaries(
            st.sampled_from(["ensemble_id", "workflow_id", "gateway_user"]),
            st.text(alphabet="abc123", min_size=1, max_size=8),
            max_size=2,
        )
    )
    start = None if wait is None else float(submit + wait)
    end = float(submit) if start is None else start + elapsed
    return UsageRecord(
        job_id=job_id,
        user=draw(st.sampled_from(["alice", "bob", "gw_portal"])),
        account="acct",
        resource=draw(st.sampled_from(["ranger", "kraken"])),
        queue_name="normal",
        cores=cores,
        requested_walltime=float(elapsed + draw(st.integers(0, 1000))),
        submit_time=float(submit),
        start_time=start,
        end_time=end,
        final_state=state,
        charged_nu=cores * elapsed / 3600.0,
        attributes=attributes,
    )
