"""Direct coverage of gateway outage degradation: shed and backlog-drain.

A4 exercises these paths only through a whole resilience campaign; these
tests pin them at the unit level — ``max_backlog=0`` sheds every request
during an outage, a positive backlog holds requests and drains them FIFO on
recovery, overflow sheds, and a multi-site backlog keeps other sites'
requests queued while one site recovers.
"""

import numpy as np

import repro.infra as I
from repro.infra.units import HOUR
from repro.sim import Simulator


def make_sites(n=1):
    sim = Simulator()
    ledger = I.AllocationLedger()
    ledger.create(
        "community", I.AllocationType.COMMUNITY, 1e9, users={"gw_portal"}
    )
    central = I.CentralAccountingDB()
    sites = [
        I.ResourceProvider(
            sim,
            I.Cluster(f"mach{i}", nodes=8, cores_per_node=4),
            ledger,
            central,
        )
        for i in range(n)
    ]
    return sim, sites, central


def gateway(sim, max_backlog, seed=0):
    return I.ScienceGateway(
        name="nanoportal",
        community_user="gw_portal",
        community_account="community",
        rng=np.random.default_rng(seed),
        sim=sim,
        max_backlog=max_backlog,
    )


def request(gw, site, user="enduser-1"):
    return gw.request(site, user, cores=1, walltime=HOUR, true_runtime=60.0)


def test_zero_backlog_sheds_everything_during_outage():
    sim, (site,), central = make_sites()
    gw = gateway(sim, max_backlog=0)
    site.mark_down()
    for i in range(5):
        job, status = request(gw, site, user=f"u{i}")
        assert job is None
        assert status == "shed"
    assert gw.requests_shed == 5
    assert gw.requests_queued == 0
    assert not gw.backlog
    # Shed clicks are gone for good: recovery submits nothing.
    site.mark_up()
    sim.run(until=4 * HOUR)
    assert gw.jobs_submitted == 0
    assert gw.backlog_submitted == 0
    assert len(central) == 0


def test_no_simulator_sheds_even_with_backlog_capacity():
    sim, (site,), _central = make_sites()
    gw = I.ScienceGateway(
        name="nanoportal",
        community_user="gw_portal",
        community_account="community",
        rng=np.random.default_rng(0),
        sim=None,
        max_backlog=10,
    )
    site.mark_down()
    job, status = request(gw, site)
    assert (job, status) == (None, "shed")
    assert gw.requests_shed == 1


def test_backlog_queues_and_drains_fifo_on_recovery():
    sim, (site,), central = make_sites()
    gw = gateway(sim, max_backlog=8)

    def driver(sim):
        # Healthy submission first, then an outage with queued clicks.
        job, status = request(gw, site, user="u-before")
        assert status == "submitted"
        site.mark_down()
        for i in range(3):
            job, status = request(gw, site, user=f"u-queued-{i}")
            assert (job, status) == (None, "queued")
        assert gw.requests_queued == 3
        assert len(gw.backlog) == 3
        yield sim.timeout(2 * HOUR)
        site.mark_up()

    sim.process(driver(sim))
    sim.run(until=12 * HOUR)
    for provider in (site,):
        provider.feed.drain()
    # Everything queued was submitted on recovery, in arrival order.
    assert gw.backlog_submitted == 3
    assert not gw.backlog
    assert gw.jobs_submitted == 4
    assert gw.end_users_served == {"u-before", "u-queued-0",
                                   "u-queued-1", "u-queued-2"}
    queued_records = sorted(
        (r for r in central.all_records()
         if r.attributes.get("gateway_user", "").startswith("u-queued")),
        key=lambda r: r.submit_time,
    )
    assert [r.attributes["gateway_user"] for r in queued_records] == [
        "u-queued-0", "u-queued-1", "u-queued-2",
    ]


def test_full_backlog_overflow_sheds():
    sim, (site,), _central = make_sites()
    gw = gateway(sim, max_backlog=2)
    site.mark_down()
    statuses = [request(gw, site, user=f"u{i}")[1] for i in range(4)]
    assert statuses == ["queued", "queued", "shed", "shed"]
    assert gw.requests_queued == 2
    assert gw.requests_shed == 2
    assert len(gw.backlog) == 2


def test_drain_keeps_other_sites_requests_queued():
    sim, (alpha, beta), _central = make_sites(n=2)
    gw = gateway(sim, max_backlog=8)

    def driver(sim):
        alpha.mark_down()
        beta.mark_down()
        request(gw, alpha, user="u-alpha")
        request(gw, beta, user="u-beta")
        assert len(gw.backlog) == 2
        yield sim.timeout(HOUR)
        alpha.mark_up()  # beta stays down

    sim.process(driver(sim))
    sim.run(until=6 * HOUR)
    # Alpha's request drained; beta's kept its place in the backlog.
    assert gw.backlog_submitted == 1
    assert len(gw.backlog) == 1
    assert gw.backlog[0][0] is beta
    assert gw.end_users_served == {"u-alpha"}
