"""T6 — Usage by field of science x modality.

The other axis every TeraGrid usage report sliced by: the charged
allocation's discipline.  Shape expectations: the field mix follows the
community weights (molecular biosciences / physics / astronomy lead); each
gateway's usage lands entirely in its domain field; and NU shares track the
batch-heavy fields rather than the user-heavy ones.
"""

from __future__ import annotations

from repro.core import AttributeClassifier
from repro.core.modalities import Modality
from repro.core.report import ascii_table
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)

__all__ = ["run"]


@register("T6")
def run(days: float = 90.0, seed: int = 1, **campaign_knobs) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    records = result.records
    classification = AttributeClassifier().classify(records)

    by_field: dict[str, dict] = {}
    for record in records:
        name = record.field_of_science or "(unassigned)"
        entry = by_field.setdefault(
            name, {"jobs": 0, "nu": 0.0, "users": set(), "gateway_nu": 0.0}
        )
        entry["jobs"] += 1
        entry["nu"] += record.charged_nu
        entry["users"].add(record.user)
        if classification.job_labels[record.job_id] is Modality.GATEWAY:
            entry["gateway_nu"] += record.charged_nu

    total_nu = sum(e["nu"] for e in by_field.values())
    rows = []
    data = {}
    for name in sorted(by_field, key=lambda n: -by_field[n]["nu"]):
        entry = by_field[name]
        rows.append(
            [
                name,
                len(entry["users"]),
                entry["jobs"],
                f"{entry['nu']:,.0f}",
                f"{100 * entry['nu'] / total_nu:.1f}%" if total_nu else "-",
                f"{100 * entry['gateway_nu'] / entry['nu']:.1f}%"
                if entry["nu"]
                else "-",
            ]
        )
        data[name] = {
            "accounts_users": len(entry["users"]),
            "jobs": entry["jobs"],
            "nu": entry["nu"],
            "gateway_nu": entry["gateway_nu"],
        }
    text = ascii_table(
        ["field of science", "account users", "jobs", "NUs", "NU share",
         "gateway NU share"],
        rows,
        title=f"T6 — Usage by field of science over {days:g} days",
    )
    return ExperimentOutput(
        experiment_id="T6",
        title="Usage by field of science",
        text=text,
        data=data,
    )


def _campaigns(params: dict) -> list:
    """The one campaign T6's (single) task reads — see ``run``'s knobs."""
    knobs = dict(params)
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("T6", _campaigns)
