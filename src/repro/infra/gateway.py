"""Science gateways: community accounts and the attribute-tagging problem.

A science gateway (nanoHUB, CIPRES, the CCSM portal, …) fronts the grid for a
large community of end users who never hold TeraGrid accounts: every job the
gateway submits runs under one *community account*.  To central accounting,
10,000 gateway users are one username — unless the gateway attaches a
*gateway user attribute* to each job, which is exactly the instrumentation
the paper argues for.

``tagging_coverage`` models partial adoption of that instrumentation: the
fraction of submitted jobs that carry the end-user attribute.  Experiment F6
sweeps it and reads the measured gateway-user count off the classifier.

Gateways also *degrade gracefully* when their backend site is in an unplanned
outage: a request arriving while the site is down is queued in a bounded
backlog (the portal keeps accepting clicks) and drained FIFO when the site
recovers, or shed when the backlog is full / no simulator was attached.
Experiment A4 reads the queued/shed/drained counters to show the modality
riding out outages that kill direct batch submission.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.infra.job import AttributeKeys, Job, SubmissionInterface
from repro.infra.site import ResourceProvider
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator

__all__ = ["ScienceGateway"]


class ScienceGateway:
    """One gateway: a portal identity, a community account, and its users."""

    def __init__(
        self,
        name: str,
        community_user: str,
        community_account: str,
        rng: np.random.Generator,
        tagging_coverage: float = 1.0,
        sim: Optional[Simulator] = None,
        max_backlog: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not (0.0 <= tagging_coverage <= 1.0):
            raise ValueError(
                f"tagging_coverage must be in [0, 1], got {tagging_coverage}"
            )
        if max_backlog < 0:
            raise ValueError(f"max_backlog must be >= 0, got {max_backlog}")
        self.name = name
        self.community_user = community_user
        self.community_account = community_account
        self.rng = rng
        self.tagging_coverage = tagging_coverage
        #: simulator handle, needed only to drain the outage backlog
        self.sim = sim
        #: how many requests may wait out a backend outage (0 = shed all)
        self.max_backlog = max_backlog
        #: requests accepted during an outage: (site, submit kwargs) FIFO
        self.backlog: deque[tuple] = deque()
        #: distinct end users who have run at least one job (ground truth)
        self.end_users_served: set[str] = set()
        # Counters live in the (run-wide) metrics registry under
        # ``gateway.<name>.*``; the attribute API below is a view onto the
        # same cells, so the oracle and the registry can never disagree.
        registry = metrics if metrics is not None else MetricsRegistry()
        scope = registry.scoped(f"gateway.{name}")
        self._jobs_submitted = scope.counter("jobs_submitted")
        self._jobs_tagged = scope.counter("jobs_tagged")
        self._requests_queued = scope.counter("requests_queued")
        self._requests_shed = scope.counter("requests_shed")
        self._backlog_submitted = scope.counter("backlog_submitted")
        self._draining: set[str] = set()

    # -- counter views (registry-backed; setters keep ``+=`` working) --------
    @property
    def jobs_submitted(self) -> int:
        return self._jobs_submitted.value

    @jobs_submitted.setter
    def jobs_submitted(self, value: int) -> None:
        self._jobs_submitted.set(value)

    @property
    def jobs_tagged(self) -> int:
        return self._jobs_tagged.value

    @jobs_tagged.setter
    def jobs_tagged(self, value: int) -> None:
        self._jobs_tagged.set(value)

    @property
    def requests_queued(self) -> int:
        return self._requests_queued.value

    @requests_queued.setter
    def requests_queued(self, value: int) -> None:
        self._requests_queued.set(value)

    @property
    def requests_shed(self) -> int:
        return self._requests_shed.value

    @requests_shed.setter
    def requests_shed(self, value: int) -> None:
        self._requests_shed.set(value)

    @property
    def backlog_submitted(self) -> int:
        return self._backlog_submitted.value

    @backlog_submitted.setter
    def backlog_submitted(self, value: int) -> None:
        self._backlog_submitted.set(value)

    def submit(
        self,
        site: ResourceProvider,
        gateway_user: str,
        cores: int,
        walltime: float,
        true_runtime: float,
        will_fail: bool = False,
        true_modality: str | None = None,
        extra_attributes: dict | None = None,
    ) -> Optional[Job]:
        """Run one job on behalf of ``gateway_user`` under the community account.

        Returns the job, or ``None`` if the backend is down and the request
        was queued or shed (see :meth:`request` for which).
        """
        job, _status = self.request(
            site,
            gateway_user,
            cores,
            walltime,
            true_runtime,
            will_fail=will_fail,
            true_modality=true_modality,
            extra_attributes=extra_attributes,
        )
        return job

    def request(
        self,
        site: ResourceProvider,
        gateway_user: str,
        cores: int,
        walltime: float,
        true_runtime: float,
        will_fail: bool = False,
        true_modality: str | None = None,
        extra_attributes: dict | None = None,
    ) -> tuple[Optional[Job], str]:
        """Submit now, queue for later, or shed — depending on backend health.

        Returns ``(job, status)`` with status one of ``"submitted"`` (job is
        in the batch system), ``"queued"`` (backend down, request held in the
        backlog and submitted automatically on recovery) or ``"shed"``
        (backend down, backlog full or unavailable — the click is lost).
        """
        if not getattr(site, "up", True):
            spec = dict(
                gateway_user=gateway_user,
                cores=cores,
                walltime=walltime,
                true_runtime=true_runtime,
                will_fail=will_fail,
                true_modality=true_modality,
                extra_attributes=extra_attributes,
            )
            if self.sim is not None and len(self.backlog) < self.max_backlog:
                self.backlog.append((site, spec))
                self.requests_queued += 1
                self._arm_drain(site)
                return None, "queued"
            self.requests_shed += 1
            return None, "shed"
        return self._do_submit(
            site,
            gateway_user,
            cores,
            walltime,
            true_runtime,
            will_fail=will_fail,
            true_modality=true_modality,
            extra_attributes=extra_attributes,
        ), "submitted"

    def _do_submit(
        self,
        site: ResourceProvider,
        gateway_user: str,
        cores: int,
        walltime: float,
        true_runtime: float,
        will_fail: bool = False,
        true_modality: str | None = None,
        extra_attributes: dict | None = None,
    ) -> Job:
        """The job's accounting ``user`` is the community user; the end user
        is visible to accounting only when the tagging coin-flip succeeds."""
        attributes: dict = {
            AttributeKeys.SUBMIT_INTERFACE: SubmissionInterface.GATEWAY.value,
            AttributeKeys.GATEWAY_NAME: self.name,
        }
        tagged = bool(self.rng.random() < self.tagging_coverage)
        if tagged:
            attributes[AttributeKeys.GATEWAY_USER] = gateway_user
        if extra_attributes:
            attributes.update(extra_attributes)
        job = Job(
            user=self.community_user,
            account=self.community_account,
            cores=cores,
            walltime=walltime,
            true_runtime=true_runtime,
            will_fail=will_fail,
            attributes=attributes,
            true_modality=true_modality,
            true_user=gateway_user,
        )
        self.end_users_served.add(gateway_user)
        self.jobs_submitted += 1
        if tagged:
            self.jobs_tagged += 1
        site.submit(job)
        return job

    # -- outage backlog -----------------------------------------------------
    def _arm_drain(self, site: ResourceProvider) -> None:
        if site.name in self._draining:
            return
        self._draining.add(site.name)
        assert self.sim is not None
        self.sim.process(
            self._drain(site), name=f"gateway-{self.name}-drain-{site.name}"
        )

    def _drain(self, site: ResourceProvider):
        yield site.wait_until_up()
        self._draining.discard(site.name)
        # Submit this site's held requests in arrival order; requests bound
        # for other (still-down) sites keep their backlog positions.
        keep: deque[tuple] = deque()
        while self.backlog:
            queued_site, spec = self.backlog.popleft()
            if queued_site is not site:
                keep.append((queued_site, spec))
                continue
            self._do_submit(site, **spec)
            self.backlog_submitted += 1
        self.backlog.extend(keep)

    @property
    def observed_coverage(self) -> float:
        """Empirical fraction of jobs that carried the end-user attribute."""
        if self.jobs_submitted == 0:
            return 0.0
        return self.jobs_tagged / self.jobs_submitted
