"""The weekly-drain capability policy (the Kraken schedule).

NICS reconciled "maximum total cycles" with "full-machine hero runs" by
forcing a machine-wide drain once a week and running consecutive capability
jobs in the cleared window, instead of letting the scheduler drain
opportunistically whenever a huge job reached the head (Hazlewood et al.,
*Scheduling a 100,000 Core Supercomputer for Maximum Utilization and
Capability*).  Experiment F4 reproduces the utilization comparison.

Mechanically: a full-machine reservation recurs every ``period``; only
*capability* jobs (fraction of the machine >= ``capability_fraction``) are
admitted inside the window, in arrival order.  Outside the window, capability
jobs are held back entirely so they never force an opportunistic drain.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.infra.cluster import Cluster
from repro.infra.job import Job
from repro.infra.scheduler.backfill import EasyBackfillScheduler
from repro.infra.scheduler.base import Reservation
from repro.infra.units import DAY, WEEK
from repro.sim import Simulator

__all__ = ["WeeklyDrainScheduler"]


class WeeklyDrainScheduler(EasyBackfillScheduler):
    """EASY backfill plus a recurring capability window.

    ``capability_fraction`` — jobs needing at least this fraction of the
    machine's nodes are "capability" jobs, admitted only inside windows.
    ``window`` — length of each capability window.
    ``period`` — time between window starts (default one week).
    ``first_window`` — start of the first window.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        on_job_end: Optional[Callable[[Job], None]] = None,
        capability_fraction: float = 0.9,
        window: float = 1 * DAY,
        period: float = WEEK,
        first_window: float = 5 * DAY,
    ) -> None:
        super().__init__(sim, cluster, on_job_end=on_job_end)
        if not (0 < capability_fraction <= 1.0):
            raise ValueError("capability_fraction must be in (0, 1]")
        if window <= 0 or period <= 0 or window > period:
            raise ValueError("need 0 < window <= period")
        self.capability_fraction = capability_fraction
        self.window = window
        self.period = period
        self.windows_opened = 0
        sim.process(self._window_cycle(sim, first_window), name="drain-cycle")

    # -- classification ------------------------------------------------------
    def is_capability_job(self, job: Job) -> bool:
        nodes = self.cluster.nodes_for(job.cores)
        return nodes >= self.capability_fraction * self.cluster.nodes

    # -- recurring reservation --------------------------------------------------
    def _window_cycle(self, sim: Simulator, first_window: float):
        # Each window's reservation is laid down a full period in advance so
        # normal jobs stop starting once their walltime would cross into it:
        # the machine drains itself toward the window with no manual purge.
        next_start = first_window
        while True:
            self.windows_opened += 1
            self.add_reservation(
                Reservation(
                    start=next_start,
                    end=next_start + self.window,
                    nodes=self.cluster.nodes,
                    access=self.is_capability_job,
                    label=f"capability-window-{self.windows_opened}",
                )
            )
            yield sim.timeout(next_start + self.window - sim.now)
            next_start += self.period

    def _in_window(self) -> bool:
        return any(
            r.start <= self.sim.now < r.end and r.access is not None
            for r in self.reservations
            if r.nodes == self.cluster.nodes
        )

    # -- policy ---------------------------------------------------------------------
    def _ordered_queue(self) -> list[Job]:
        order = super()._ordered_queue()
        if self._in_window():
            # Capability jobs first while the machine is cleared.
            return sorted(
                order,
                key=lambda job: (
                    0 if self.is_capability_job(job) else 1,
                    self._arrival_order[job.job_id],
                ),
            )
        # Outside windows, capability jobs are invisible to the scheduler so
        # they cannot pin a shadow reservation and drain the machine.
        return [job for job in order if not self.is_capability_job(job)]

    def _policy_pass(self) -> None:
        if not self._ordered_queue():
            return
        super()._policy_pass()
