"""F9 — Wide-area data movement by modality.

The modality taxonomy's fourth dimension is the data pattern, and the
TeraGrid ran a dedicated WAN (plus Lustre-WAN/Data Capacitor experiments)
largely because of it.  This figure reports the transfer count, volume and
achieved rates attributable to each modality over the canonical campaign.

Shape expectations: BATCH dominates volume (many sessions, tens-of-GB
inputs, and the largest roaming population); ENSEMBLE contributes the most
*transfers* per unit of volume (workflow stage-outs are numerous but small);
COUPLED moves data rarely but in every run (inputs to all parts); GATEWAY
and VIZ move essentially nothing over the WAN.
"""

from __future__ import annotations

import numpy as np

from repro.core.modalities import MODALITY_ORDER
from repro.core.report import ascii_table
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)

__all__ = ["run"]

TB = 1e12


@register("F9")
def run(days: float = 90.0, seed: int = 1, **campaign_knobs) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    # Same-site stage-ins are local filesystem copies, not WAN movement.
    transfers = [
        t for t in result.network.completed_transfers if t.src != t.dst
    ]

    by_tag: dict[str, list] = {}
    for transfer in transfers:
        by_tag.setdefault(transfer.tag or "untagged", []).append(transfer)

    rows = []
    data = {}
    for modality in MODALITY_ORDER:
        group = by_tag.get(modality.value, [])
        volume = sum(t.size_bytes for t in group)
        durations = [t.duration for t in group if t.duration]
        rates = [
            t.size_bytes / t.duration / 1e6
            for t in group
            if t.duration and t.duration > 0
        ]
        rows.append(
            [
                modality.value,
                len(group),
                f"{volume / TB:.2f} TB",
                f"{np.median(rates):.0f} MB/s" if rates else "-",
            ]
        )
        data[modality.value] = {
            "transfers": len(group),
            "bytes": volume,
            "median_rate_mbs": float(np.median(rates)) if rates else 0.0,
        }
    total_volume = sum(t.size_bytes for t in transfers)
    text = ascii_table(
        ["modality", "WAN transfers", "volume", "median rate"],
        rows,
        title=(
            f"F9 — Wide-area data movement by modality over {days:g} days "
            f"({len(transfers)} transfers, {total_volume / TB:.2f} TB total)"
        ),
    )
    data["total_bytes"] = total_volume
    data["total_transfers"] = len(transfers)
    return ExperimentOutput(
        experiment_id="F9",
        title="Data movement by modality",
        text=text,
        data=data,
    )


def _campaigns(params: dict) -> list:
    """The one campaign F9's (single) task reads — see ``run``'s knobs."""
    knobs = dict(params)
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("F9", _campaigns)
