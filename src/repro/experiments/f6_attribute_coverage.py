"""F6 — Gateway attribute coverage ablation (the paper's motivating gap).

Shape expectation: measured gateway users rise monotonically (and roughly
linearly at the per-user job counts simulated here it saturates quickly —
a user is counted once *any* of their jobs is tagged) from the number of
community accounts at coverage 0 to the true count at coverage 1.

Each coverage point is an independent campaign, declared as one task so the
sweep parallelizes across worker processes.
"""

from __future__ import annotations

from repro.core import AttributeClassifier
from repro.core.modalities import Modality
from repro.core.report import ascii_table, series_block
from repro.experiments.base import (
    ExperimentOutput,
    ExperimentTask,
    campaign,
    campaign_key,
    register,
    register_campaigns,
    register_tasks,
    run_via_tasks,
)

__all__ = ["run"]

_DAYS = 45.0
_SEED = 1
_COVERAGES = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)


def plan(
    days: float = _DAYS,
    seed: int = _SEED,
    coverages: tuple[float, ...] = _COVERAGES,
) -> list[ExperimentTask]:
    return [
        ExperimentTask(
            experiment_id="F6",
            index=index,
            params={"days": days, "seed": int(seed), "coverage": float(coverage)},
            seed=int(seed),
        )
        for index, coverage in enumerate(coverages)
    ]


def execute(params: dict) -> dict:
    """One sweep point: campaign at one tagging coverage, count recovery."""
    result = campaign(
        days=params["days"],
        seed=params["seed"],
        gateway_tagging_coverage=params["coverage"],
    )
    truth = result.active_truth_by_identity()
    true_gateway = sum(1 for m in truth.values() if m is Modality.GATEWAY)
    classification = AttributeClassifier().classify(result.records)
    # Gateway-primary identities split into *identified end users*
    # (resolved through a gateway-user attribute -> "<gateway>:<user>")
    # and *community-account remainders* (the untagged residue an
    # operations report would list as "unattributed gateway usage").
    gateway_identities = [
        identity
        for identity, modality in classification.identity_primary.items()
        if modality is Modality.GATEWAY
    ]
    identified = sum(1 for i in gateway_identities if ":" in i)
    return {
        "identified": identified,
        "remainder_accounts": len(gateway_identities) - identified,
        "true": true_gateway,
    }


def merge(
    partials: list[dict],
    days: float = _DAYS,
    seed: int = _SEED,
    coverages: tuple[float, ...] = _COVERAGES,
) -> ExperimentOutput:
    rows = []
    series = []
    data = {}
    for coverage, partial in zip(coverages, partials):
        identified = partial["identified"]
        remainder = partial["remainder_accounts"]
        true_gateway = partial["true"]
        rows.append(
            [
                f"{coverage:.0%}",
                identified,
                remainder,
                true_gateway,
                f"{100 * identified / true_gateway:.0f}%"
                if true_gateway
                else "-",
            ]
        )
        series.append((coverage, float(identified)))
        data[coverage] = partial
    table = ascii_table(
        [
            "tagging coverage",
            "identified end users",
            "community-acct remainders",
            "true (active)",
            "recovered",
        ],
        rows,
        title=(
            f"F6 — Identified gateway users vs attribute coverage "
            f"({days:g} days)"
        ),
    )
    figure = series_block(
        "F6 series (x=coverage, y=identified gateway end users)",
        {"identified": series},
    )
    return ExperimentOutput(
        experiment_id="F6",
        title="Gateway attribute coverage ablation",
        text=table + "\n\n" + figure,
        data=data,
    )


def _campaigns(params: dict) -> list:
    """Each F6 sweep point is its own campaign at one tagging coverage."""
    return [
        campaign_key(
            days=params["days"],
            seed=params["seed"],
            gateway_tagging_coverage=params["coverage"],
        )
    ]


register_tasks("F6", plan=plan, execute=execute, merge=merge)
register_campaigns("F6", _campaigns)


@register("F6")
def run(
    days: float = _DAYS,
    seed: int = _SEED,
    coverages: tuple[float, ...] = _COVERAGES,
) -> ExperimentOutput:
    return run_via_tasks("F6", days=days, seed=seed, coverages=coverages)
