"""Tests for time series, the survey model and classifier scoring."""

import numpy as np
import pytest

from repro.core.classifier import AttributeClassifier, Classification
from repro.core.evaluation import score_classification, user_count_errors
from repro.core.modalities import Modality
from repro.core.survey import (
    DEFAULT_RESPONSE_RATES,
    SurveyInstrument,
    SurveyResult,
)
from repro.core.timeseries import bucketed_nu, quarterly_user_counts
from repro.infra.job import AttributeKeys
from repro.infra.units import DAY, HOUR


# ---------------------------------------------------------------- timeseries


def test_quarterly_user_counts_buckets_by_end_time(make_record):
    bucket = 10 * DAY
    records = [
        make_record(user="early", submit=0.0, elapsed=HOUR, job_id=9000),
        make_record(user="late", submit=15 * DAY, elapsed=HOUR, job_id=9001),
    ]
    series = quarterly_user_counts(records, bucket=bucket)
    assert sorted(series) == [0, 1]
    assert sum(series[0].values()) == 1
    assert sum(series[1].values()) == 1


def test_quarterly_counts_show_growth(make_record):
    bucket = 10 * DAY
    records = []
    # 1 gateway user in bucket 0, 5 in bucket 1.
    for bucket_index, n_users in [(0, 1), (1, 5)]:
        for u in range(n_users):
            records.append(
                make_record(
                    user="gw",
                    submit=bucket_index * bucket + u * HOUR,
                    elapsed=HOUR / 2,
                    attributes={
                        AttributeKeys.SUBMIT_INTERFACE: "gateway",
                        AttributeKeys.GATEWAY_NAME: "portal",
                        AttributeKeys.GATEWAY_USER: f"end{u}",
                    },
                    job_id=9100 + bucket_index * 10 + u,
                )
            )
    series = quarterly_user_counts(records, bucket=bucket)
    assert series[0][Modality.GATEWAY] == 1
    assert series[1][Modality.GATEWAY] == 5


def test_bucketed_nu_sums_match_records(make_record):
    bucket = 10 * DAY
    records = [
        make_record(user="a", submit=0.0, elapsed=HOUR, cores=10, job_id=9200),
        make_record(user="b", submit=12 * DAY, elapsed=HOUR, cores=20, job_id=9201),
    ]
    series = bucketed_nu(records, bucket=bucket)
    total = sum(sum(b.values()) for b in series.values())
    assert total == pytest.approx(sum(r.charged_nu for r in records))


# ------------------------------------------------------------------- survey


def rng():
    return np.random.default_rng(11)


def test_survey_response_rates_bias_participation():
    truth = {f"cli{i}": Modality.COUPLED for i in range(50)}
    truth.update({f"gw{i}": Modality.GATEWAY for i in range(50)})
    survey = SurveyInstrument(rng())
    result = survey.run(truth)
    coupled_responses = sum(1 for u in result.responses if u.startswith("cli"))
    gateway_responses = sum(1 for u in result.responses if u.startswith("gw"))
    assert coupled_responses > gateway_responses


def test_survey_self_report_bias_inflates_batch():
    truth = {f"e{i}": Modality.EXPLORATORY for i in range(400)}
    survey = SurveyInstrument(
        rng(), response_rates={Modality.EXPLORATORY: 1.0}
    )
    result = survey.run(truth)
    counts = result.reported_counts()
    assert counts[Modality.BATCH] > 0  # some self-report as batch
    assert counts[Modality.EXPLORATORY] > counts[Modality.BATCH]


def test_survey_result_shares_sum_to_one():
    truth = {f"u{i}": Modality.BATCH for i in range(100)}
    result = SurveyInstrument(rng()).run(truth)
    shares = result.reported_shares()
    assert sum(shares.values()) == pytest.approx(1.0)
    assert 0.0 < result.response_rate < 1.0


def test_survey_validation():
    with pytest.raises(ValueError):
        SurveyInstrument(rng(), response_rates={Modality.BATCH: 1.5})
    with pytest.raises(ValueError):
        SurveyInstrument(
            rng(), self_report={Modality.BATCH: {Modality.BATCH: 0.5}}
        )


def test_empty_survey():
    result = SurveyInstrument(rng()).run({})
    assert result.response_rate == 0.0
    assert sum(result.reported_shares().values()) == 0.0


# ----------------------------------------------------------------- evaluation


def test_score_classification_perfect(make_record):
    records = [
        make_record(user="u", attributes={AttributeKeys.ENSEMBLE_ID: "e"},
                    job_id=9300 + i, submit=i * 60.0)
        for i in range(4)
    ]
    classification = AttributeClassifier().classify(records)
    truth = {r.job_id: Modality.ENSEMBLE for r in records}
    summary = score_classification(classification, truth)
    assert summary.accuracy == 1.0
    assert summary.precision(Modality.ENSEMBLE) == 1.0
    assert summary.recall(Modality.ENSEMBLE) == 1.0
    assert summary.f1(Modality.ENSEMBLE) == 1.0
    assert summary.f1(Modality.VIZ) == 0.0


def test_score_classification_confusion(make_record):
    records = [
        make_record(user="u", job_id=9400 + i, submit=i * 10 * HOUR,
                    elapsed=4 * HOUR, cores=64)
        for i in range(4)
    ]
    classification = AttributeClassifier().classify(records)  # -> BATCH
    truth = {r.job_id: Modality.ENSEMBLE for r in records}  # truth says no
    summary = score_classification(classification, truth)
    assert summary.accuracy == 0.0
    assert summary.recall(Modality.ENSEMBLE) == 0.0
    assert summary.precision(Modality.BATCH) == 0.0
    assert summary.confusion[Modality.ENSEMBLE][Modality.BATCH] == 4


def test_score_requires_complete_truth(make_record):
    records = [make_record(job_id=9500)]
    classification = AttributeClassifier().classify(records)
    with pytest.raises(ValueError):
        score_classification(classification, {})


def test_user_count_errors():
    measured = {Modality.GATEWAY: 3, Modality.BATCH: 40}
    true = {Modality.GATEWAY: 300, Modality.BATCH: 40}
    errors = user_count_errors(measured, true)
    assert errors[Modality.GATEWAY] == pytest.approx(-0.99)
    assert errors[Modality.BATCH] == 0.0
    assert errors[Modality.VIZ] == 0.0  # absent everywhere


def test_user_count_errors_zero_truth_reports_raw_count():
    errors = user_count_errors({Modality.VIZ: 7}, {})
    assert errors[Modality.VIZ] == 7.0
