"""T7 — Per-gateway community report.

The per-gateway numbers TeraGrid wanted to quote (nanoHUB alone reported
120,000+ users served): end users identified, jobs, NUs, and the observed
attribute-tagging coverage — all derivable from accounting once the
instrumentation is in place.

Shape expectations: gateway popularity is heavy-tailed (the first gateway
serves about half the end users); per-gateway NUs are tiny next to the
federation total; coverage matches the configured tagging probability.
"""

from __future__ import annotations

from repro.core.records import resolve_identity
from repro.core.report import ascii_table
from repro.experiments.base import (
    ExperimentOutput,
    campaign,
    campaign_key,
    register,
    register_campaigns,
)
from repro.infra.job import AttributeKeys

__all__ = ["run"]


@register("T7")
def run(days: float = 90.0, seed: int = 1, **campaign_knobs) -> ExperimentOutput:
    result = campaign(days=days, seed=seed, **campaign_knobs)
    records = result.records

    per_gateway: dict[str, dict] = {}
    for record in records:
        gateway = record.attributes.get(AttributeKeys.GATEWAY_NAME)
        if gateway is None:
            continue
        entry = per_gateway.setdefault(
            gateway,
            {"jobs": 0, "nu": 0.0, "tagged": 0, "end_users": set()},
        )
        entry["jobs"] += 1
        entry["nu"] += record.charged_nu
        if AttributeKeys.GATEWAY_USER in record.attributes:
            entry["tagged"] += 1
            entry["end_users"].add(resolve_identity(record))

    total_nu = result.central.total_nu()
    rows = []
    data = {}
    for gateway in sorted(
        per_gateway, key=lambda g: -len(per_gateway[g]["end_users"])
    ):
        entry = per_gateway[gateway]
        coverage = entry["tagged"] / entry["jobs"] if entry["jobs"] else 0.0
        rows.append(
            [
                gateway,
                len(entry["end_users"]),
                entry["jobs"],
                f"{entry['nu']:,.0f}",
                f"{100 * entry['nu'] / total_nu:.2f}%" if total_nu else "-",
                f"{100 * coverage:.0f}%",
            ]
        )
        data[gateway] = {
            "end_users": len(entry["end_users"]),
            "jobs": entry["jobs"],
            "nu": entry["nu"],
            "coverage": coverage,
        }
    text = ascii_table(
        ["gateway", "end users identified", "jobs", "NUs", "share of all NUs",
         "tagging coverage"],
        rows,
        title=f"T7 — Science-gateway community report over {days:g} days",
    )
    return ExperimentOutput(
        experiment_id="T7",
        title="Per-gateway community report",
        text=text,
        data=data,
    )


def _campaigns(params: dict) -> list:
    """The one campaign T7's (single) task reads — see ``run``'s knobs."""
    knobs = dict(params)
    return [
        campaign_key(
            days=knobs.pop("days", 90.0), seed=knobs.pop("seed", 1), **knobs
        )
    ]


register_campaigns("T7", _campaigns)
