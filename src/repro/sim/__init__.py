"""Discrete-event simulation kernel.

SimPy is not available in this offline environment, so :mod:`repro.sim`
provides an equivalent generator-based process/event kernel: a time-ordered
event heap (:class:`~repro.sim.engine.Simulator`), coroutine processes that
``yield`` events (:class:`~repro.sim.process.Process`), timeouts, condition
events, interrupts, counting resources, stores, and reproducible named random
streams.

Quick example::

    from repro.sim import Simulator

    sim = Simulator()

    def clock(sim, name, period):
        while True:
            yield sim.timeout(period)
            print(name, sim.now)

    sim.process(clock(sim, "fast", 0.5))
    sim.process(clock(sim, "slow", 1.0))
    sim.run(until=2.0)
"""

from repro.sim.engine import (
    Simulator,
    SimulationError,
    StopSimulation,
    WHEEL_TICK,
    set_wheel_default,
)
from repro.sim.process import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.resources import Request, Resource, Store
from repro.sim.rng import BufferedStreams, RandomStreams, derive_seed
from repro.sim import distributions

__all__ = [
    "AllOf",
    "AnyOf",
    "BufferedStreams",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "WHEEL_TICK",
    "derive_seed",
    "set_wheel_default",
    "Request",
    "Resource",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
    "distributions",
]
