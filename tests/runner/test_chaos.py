"""Chaos-injection tests: the fault-tolerance claims, proven.

The harness injects worker kills, hangs and cache corruption via the
``REPRO_CHAOS`` environment variable; these tests assert the runner's
contract — sweeps complete, the CLI never crashes, and the final output is
byte-identical to a fault-free run.
"""

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.base import (
    ExperimentOutput,
    ExperimentTask,
    register_tasks,
    registry,
    task_plans,
)
from repro.runner import ParallelRunner, ResultCache, RetryPolicy
from repro.runner.cache import read_entry
from repro.runner.chaos import (
    KILL_EXIT_CODE,
    ChaosConfig,
    chaos_from_env,
    maybe_corrupt_entry,
)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pool chaos tests rely on fork inheriting the test registry",
)


# -- spec parsing --------------------------------------------------------------

def test_parse_full_spec():
    config = ChaosConfig.parse("kill:0.2,hang:0.1,corrupt:0.05")
    assert (config.kill, config.hang, config.corrupt) == (0.2, 0.1, 0.05)
    assert config.active


def test_parse_partial_spec_defaults_rest_to_zero():
    config = ChaosConfig.parse("kill:1.0")
    assert config.kill == 1.0 and config.hang == 0.0 and config.corrupt == 0.0


def test_parse_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown chaos kind"):
        ChaosConfig.parse("explode:0.5")


def test_parse_rejects_non_numeric_probability():
    with pytest.raises(ValueError, match="must be a number"):
        ChaosConfig.parse("kill:often")


def test_parse_rejects_out_of_range_probability():
    with pytest.raises(ValueError, match=r"in \[0, 1\]"):
        ChaosConfig.parse("hang:1.5")


def test_env_unset_means_inactive(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    assert not chaos_from_env().active


def test_env_roundtrip(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "kill:0.3")
    monkeypatch.setenv("REPRO_CHAOS_SEED", "9")
    monkeypatch.setenv("REPRO_CHAOS_HANG_SECONDS", "2.5")
    config = chaos_from_env()
    assert config.kill == 0.3 and config.seed == 9
    assert config.hang_seconds == 2.5


# -- decision determinism ------------------------------------------------------

def test_decisions_are_pure_functions_of_seed_site_attempt():
    a = ChaosConfig(kill=0.5, seed=1)
    b = ChaosConfig(kill=0.5, seed=1)
    decisions_a = [a.should_kill("t", n) for n in range(1, 20)]
    decisions_b = [b.should_kill("t", n) for n in range(1, 20)]
    assert decisions_a == decisions_b
    assert any(decisions_a) and not all(decisions_a)  # p=0.5 mixes outcomes
    assert decisions_a != [
        ChaosConfig(kill=0.5, seed=2).should_kill("t", n) for n in range(1, 20)
    ]


def test_pre_task_is_gated_out_of_the_parent_process():
    # Were the gate missing, kill=1.0 would os._exit the test process here —
    # surviving this call *is* the assertion.
    config = ChaosConfig(kill=1.0, hang=1.0, hang_seconds=60.0)
    assert multiprocessing.parent_process() is None
    config.pre_task("any-task", 1)


def test_kill_exit_code_is_distinctive():
    assert KILL_EXIT_CODE not in (0, 1, 2)


# -- corruption ----------------------------------------------------------------

def test_maybe_corrupt_entry_damages_detectably(tmp_path):
    cache = ResultCache(root=tmp_path)
    cache.put("T1", {}, 1, {"rows": [1, 2]})
    (entry,) = cache.entries()
    assert maybe_corrupt_entry(ChaosConfig(corrupt=1.0), entry, "key")
    with pytest.raises(ValueError):
        read_entry(entry)


def test_corrupt_probability_zero_never_touches_files(tmp_path):
    target = tmp_path / "entry.pkl"
    target.write_bytes(b"pristine")
    assert not maybe_corrupt_entry(ChaosConfig(corrupt=0.0), target, "key")
    assert target.read_bytes() == b"pristine"


def test_corrupted_sweep_recovers_by_quarantine_and_recompute(
    tmp_path, monkeypatch, chaos_experiment
):
    clean = ParallelRunner(jobs=1, use_cache=False).run("CZ")

    monkeypatch.setenv("REPRO_CHAOS", "corrupt:1.0")
    poisoned = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    first = poisoned.run("CZ")
    assert first.text == clean.text  # corruption hits the disk, not the value

    monkeypatch.delenv("REPRO_CHAOS")
    reader = ParallelRunner(jobs=1, cache=ResultCache(root=tmp_path))
    second = reader.run("CZ")
    assert second.text == clean.text
    assert reader.cache_stats.quarantined == 4
    assert reader.cache_stats.hits == 0  # every poisoned entry was rejected
    assert len(reader.cache.quarantined_entries()) == 4


# -- a tiny registered experiment for end-to-end injection ---------------------

def _cz_run(**knobs):
    raise NotImplementedError("CZ only runs via its task plan")


def _cz_plan(seeds=(1, 2, 3, 4), **_knobs):
    return [
        ExperimentTask("CZ", index, {"seed": seed}, seed)
        for index, seed in enumerate(seeds)
    ]


def _cz_execute(params):
    return params["seed"] * 11


def _cz_merge(partials, **_knobs):
    return ExperimentOutput(
        "CZ", "chaos probe", text=",".join(str(p) for p in partials)
    )


@pytest.fixture
def chaos_experiment():
    registry["CZ"] = _cz_run
    register_tasks("CZ", _cz_plan, _cz_execute, _cz_merge)
    yield
    registry.pop("CZ", None)
    task_plans.pop("CZ", None)


# -- end-to-end: sweeps survive injected faults, byte-identically --------------

@fork_only
def test_kill_sweep_completes_byte_identical(monkeypatch, chaos_experiment):
    clean = ParallelRunner(jobs=1, use_cache=False).run("CZ")

    monkeypatch.setenv("REPRO_CHAOS", "kill:0.5")
    chaotic = ParallelRunner(jobs=2, use_cache=False)
    survived = chaotic.run("CZ")

    assert survived.text == clean.text
    assert survived.data == clean.data
    assert not chaotic.failures
    # The scenario must actually have injected something to prove anything.
    assert chaotic.pool_deaths > 0
    assert chaotic.retries > 0 or chaotic.degraded_tasks


@fork_only
def test_certain_kill_degrades_to_serial_and_still_finishes(
    monkeypatch, chaos_experiment
):
    clean = ParallelRunner(jobs=1, use_cache=False).run("CZ")

    monkeypatch.setenv("REPRO_CHAOS", "kill:1.0")  # no pool attempt can live
    chaotic = ParallelRunner(
        jobs=2, use_cache=False,
        retry=RetryPolicy(max_attempts=2, base_delay=0.01),
        max_pool_deaths=2,
    )
    survived = chaotic.run("CZ")
    assert survived.text == clean.text
    assert not chaotic.failures
    assert chaotic.pool_deaths == 2  # gave up on pools...
    assert len(chaotic.degraded_tasks) == 4  # ...and finished inline


@fork_only
def test_hangs_become_timeouts_then_degrade(monkeypatch, chaos_experiment):
    clean = ParallelRunner(jobs=1, use_cache=False).run("CZ")

    monkeypatch.setenv("REPRO_CHAOS", "hang:1.0")
    monkeypatch.setenv("REPRO_CHAOS_HANG_SECONDS", "60")
    chaotic = ParallelRunner(
        jobs=2, use_cache=False, task_timeout=0.5,
        retry=RetryPolicy(max_attempts=2, base_delay=0.01),
    )
    survived = chaotic.run("CZ")
    assert survived.text == clean.text
    assert not chaotic.failures
    # Every task hung, timed out in-pool, and was rescued inline (where
    # chaos is gated off); none may be reported failed.
    assert len(chaotic.degraded_tasks) == 4


def _bad_execute(params):
    if params["seed"] == 2:
        raise RuntimeError("task bug, deterministic")
    return params["seed"]


@pytest.fixture
def buggy_experiment():
    registry["BZ"] = _cz_run
    register_tasks(
        "BZ",
        lambda **_: [
            ExperimentTask("BZ", i, {"seed": s}, s) for i, s in enumerate((1, 2, 3))
        ],
        _bad_execute,
        _cz_merge,
    )
    yield
    registry.pop("BZ", None)
    task_plans.pop("BZ", None)


def test_task_exceptions_are_contained_not_retried(buggy_experiment):
    runner = ParallelRunner(jobs=1, use_cache=False)
    output = runner.run("BZ")
    assert output.title == "FAILED"
    assert "1 of 3 task(s) failed" in output.text
    assert "RuntimeError: task bug" in output.text
    (failure,) = runner.failures
    assert failure.kind == "exception"
    assert failure.attempts == 1  # exceptions never burn retries
    assert runner.retries == 0


# -- acceptance: SIGKILL mid-sweep, resume re-runs only the incomplete ---------

def _journal_events(path: Path) -> list[dict]:
    events = []
    if path.is_file():
        for line in path.read_text().splitlines():
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                pass
    return events


@pytest.mark.slow
def test_sigkill_then_resume_reruns_only_incomplete_tasks(tmp_path):
    repo_src = Path(__file__).resolve().parents[2] / "src"
    env = dict(
        os.environ,
        PYTHONPATH=str(repo_src),
        REPRO_CACHE_DIR=str(tmp_path / "cache"),
    )
    argv = [
        sys.executable, "-m", "repro", "run-all", "--fast", "--only", "R1",
        "--jobs", "1", "--runs-dir", str(tmp_path / "runs"),
        "--out", str(tmp_path / "dead.txt"),
    ]
    victim = subprocess.Popen(
        argv, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
    )
    # Wait for the first durable completion, then SIGKILL mid-sweep.
    deadline = time.time() + 120
    journal_path = None
    completed_before = 0
    while time.time() < deadline:
        run_dirs = sorted((tmp_path / "runs").glob("*/journal.jsonl"))
        if run_dirs:
            journal_path = run_dirs[0]
            completed_before = sum(
                1 for e in _journal_events(journal_path)
                if e.get("event") == "task-completed"
            )
            if completed_before:
                break
        time.sleep(0.05)
    assert journal_path is not None and completed_before >= 1
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)
    # Settle the ground truth *after* the kill: completions recorded so far.
    completed_at_kill = sum(
        1 for e in _journal_events(journal_path)
        if e.get("event") == "task-completed"
    )
    assert 1 <= completed_at_kill <= 3

    run_id = journal_path.parent.name
    resume = subprocess.run(
        [
            sys.executable, "-m", "repro", "run-all", "--fast", "--only", "R1",
            "--jobs", "1", "--runs-dir", str(tmp_path / "runs"),
            "--resume", run_id, "--out", str(tmp_path / "resumed.txt"),
        ],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert resume.returncode == 0, resume.stderr

    # The resume appends to the same journal; split at its run-started event.
    events = _journal_events(journal_path)
    (resume_start,) = [
        i for i, e in enumerate(events)
        if e.get("event") == "run-started" and e.get("resumed")
    ]
    resume_events = events[resume_start:]
    skipped = [
        e for e in resume_events
        if e.get("event") == "task-completed" and e.get("cached")
    ]
    recomputed = [e for e in resume_events if e.get("event") == "task-started"]
    # Journal-recorded completions were skipped via the journal's skip-set; a
    # completion whose cache write landed but whose journal line was torn by
    # the SIGKILL may still be served from cache.  Either way: never re-run.
    assert len(skipped) >= completed_at_kill
    assert len(recomputed) == 3 - len(skipped)  # R1 fast = 3 tasks total
    assert len(recomputed) < 3  # something was genuinely skipped

    clean = subprocess.run(
        [
            sys.executable, "-m", "repro", "run-all", "--fast", "--only", "R1",
            "--jobs", "1", "--no-cache", "--no-journal",
            "--out", str(tmp_path / "clean.txt"),
        ],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert clean.returncode == 0, clean.stderr
    assert (tmp_path / "resumed.txt").read_bytes() == (
        tmp_path / "clean.txt"
    ).read_bytes()
