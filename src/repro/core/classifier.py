"""Modality classification from accounting records.

Two classifiers implement the paper's before/after story:

* :class:`AttributeClassifier` — assumes the proposed instrumentation is in
  place: jobs carry submission-interface, gateway-user, ensemble/workflow,
  co-allocation and interactive attributes.  Attribute-labelled jobs are
  assigned directly; only the batch-vs-exploratory split still relies on
  behavioural statistics (no attribute can reveal intent).
* :class:`HeuristicClassifier` — the pre-instrumentation world: attributes
  are ignored entirely and every signal must be inferred from structural
  record fields (timing coincidences, submission bursts, queue names,
  community-account membership).  Its failure modes — gateway-user collapse
  above all — are what motivated the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.modalities import MODALITY_ORDER, Modality
from repro.core.records import (
    IdentityView,
    build_identity_views,
    burst_membership,
    strip_attributes,
)
from repro.infra.accounting import UsageRecord
from repro.infra.job import AttributeKeys
from repro.infra.units import MINUTE

__all__ = [
    "ClassifierConfig",
    "Classification",
    "AttributeClassifier",
    "HeuristicClassifier",
]


@dataclass(frozen=True)
class ClassifierConfig:
    """Thresholds for the behavioural heuristics.

    Defaults follow the workload-modelling rules of thumb: porting activity
    is minutes-scale, small, and failure-prone; production batch is
    hours-scale and reliable.
    """

    #: residual jobs split: exploratory if median runtime below this...
    exploratory_max_median_elapsed: float = 30 * MINUTE
    #: ...and either failures are common or everything is tiny
    exploratory_min_failure_fraction: float = 0.15
    exploratory_max_median_cores: float = 4.0
    #: submission-burst detection (ensemble signature)
    burst_window: float = 30 * MINUTE
    burst_min_size: int = 5
    #: identity counts as ensemble-modality if this fraction of jobs burst
    ensemble_min_burst_fraction: float = 0.5
    #: heuristic coupled detection: multi-resource starts within epsilon
    coupled_start_epsilon: float = 2 * MINUTE


@dataclass
class Classification:
    """The output of a classifier run."""

    job_labels: dict[int, Modality]
    identity_modalities: dict[str, set[Modality]] = field(default_factory=dict)
    identity_primary: dict[str, Modality] = field(default_factory=dict)
    views: dict[str, IdentityView] = field(default_factory=dict)

    def users_by_modality(self) -> dict[Modality, int]:
        """Identities per *primary* modality (the paper's headline count)."""
        counts = {m: 0 for m in Modality}
        for modality in self.identity_primary.values():
            counts[modality] += 1
        return counts

    def users_exhibiting(self) -> dict[Modality, int]:
        """Identities exhibiting each modality at all (multi-membership)."""
        counts = {m: 0 for m in Modality}
        for modalities in self.identity_modalities.values():
            for modality in modalities:
                counts[modality] += 1
        return counts

    @property
    def n_identities(self) -> int:
        return len(self.identity_primary)

    def coverage(self, records: Iterable[UsageRecord]) -> tuple[int, int]:
        """(labeled, total) over ``records`` — the oracle's totals hook.

        A sane classification labels every record it was shown exactly once:
        ``labeled == total``.  Anything else means records were dropped or
        invented somewhere between accounting and classification.
        """
        total = 0
        labeled = 0
        for record in records:
            total += 1
            if record.job_id in self.job_labels:
                labeled += 1
        return labeled, total


def _split_residual(view: IdentityView, residual: list[UsageRecord],
                    config: ClassifierConfig) -> Modality:
    """Batch vs exploratory for an identity's unlabelled jobs."""
    from repro.core.records import RecordFeatures

    features = RecordFeatures.from_records(
        residual, burst_window=config.burst_window,
        burst_min_size=config.burst_min_size,
    )
    short = features.median_elapsed <= config.exploratory_max_median_elapsed
    failure_prone = (
        features.failure_fraction >= config.exploratory_min_failure_fraction
    )
    tiny = features.median_cores <= config.exploratory_max_median_cores
    if short and (failure_prone or tiny):
        return Modality.EXPLORATORY
    return Modality.BATCH


def _pick_primary(
    view: IdentityView, labels: dict[int, Modality]
) -> Modality:
    """Primary modality: most jobs, then most NU, then taxonomy order."""
    per_modality_jobs: dict[Modality, int] = {}
    per_modality_nu: dict[Modality, float] = {}
    for record in view.records:
        modality = labels[record.job_id]
        per_modality_jobs[modality] = per_modality_jobs.get(modality, 0) + 1
        per_modality_nu[modality] = (
            per_modality_nu.get(modality, 0.0) + record.charged_nu
        )
    return max(
        per_modality_jobs,
        key=lambda m: (
            per_modality_jobs[m],
            per_modality_nu[m],
            -MODALITY_ORDER.index(m),
        ),
    )


class AttributeClassifier:
    """Classification with the paper's instrumentation in place."""

    def __init__(self, config: Optional[ClassifierConfig] = None) -> None:
        self.config = config or ClassifierConfig()

    def label_job(self, record: UsageRecord) -> Optional[Modality]:
        """Attribute-determined label, or None for residual (batch/expl.)."""
        attrs = record.attributes
        if AttributeKeys.COALLOCATION_ID in attrs:
            return Modality.COUPLED
        if attrs.get(AttributeKeys.INTERACTIVE) or record.queue_name == "interactive":
            return Modality.VIZ
        if attrs.get(AttributeKeys.SUBMIT_INTERFACE) == "gateway":
            return Modality.GATEWAY
        if AttributeKeys.ENSEMBLE_ID in attrs or AttributeKeys.WORKFLOW_ID in attrs:
            return Modality.ENSEMBLE
        return None

    def classify(self, records: Iterable[UsageRecord]) -> Classification:
        views = build_identity_views(records, use_attributes=True)
        job_labels: dict[int, Modality] = {}
        identity_modalities: dict[str, set[Modality]] = {}
        identity_primary: dict[str, Modality] = {}
        for identity, view in views.items():
            residual: list[UsageRecord] = []
            for record in view.records:
                label = self.label_job(record)
                if label is None:
                    residual.append(record)
                else:
                    job_labels[record.job_id] = label
            if residual:
                residual_label = _split_residual(view, residual, self.config)
                for record in residual:
                    job_labels[record.job_id] = residual_label
            modalities = {job_labels[r.job_id] for r in view.records}
            identity_modalities[identity] = modalities
            identity_primary[identity] = _pick_primary(view, job_labels)
        return Classification(
            job_labels=job_labels,
            identity_modalities=identity_modalities,
            identity_primary=identity_primary,
            views=views,
        )


class HeuristicClassifier:
    """Classification from a pre-instrumentation accounting stream.

    ``known_community_accounts`` reflects what TeraGrid *did* know before the
    instrumentation: which allocations were community (gateway) awards.  Jobs
    on those accounts are gateway usage — but every gateway's users collapse
    onto its single community identity.
    """

    def __init__(
        self,
        config: Optional[ClassifierConfig] = None,
        known_community_accounts: Optional[set[str]] = None,
    ) -> None:
        self.config = config or ClassifierConfig()
        self.known_community_accounts = known_community_accounts or set()

    def classify(self, records: Iterable[UsageRecord]) -> Classification:
        bare = strip_attributes(records)
        views = build_identity_views(bare, use_attributes=False)
        config = self.config
        job_labels: dict[int, Modality] = {}
        identity_modalities: dict[str, set[Modality]] = {}
        identity_primary: dict[str, Modality] = {}
        for identity, view in views.items():
            ordered = view.records  # already in submission order
            coupled_ids = self._detect_coupled(ordered)
            bursts = burst_membership(
                ordered, config.burst_window, config.burst_min_size
            )
            residual: list[UsageRecord] = []
            for record, in_burst in zip(ordered, bursts):
                if record.job_id in coupled_ids:
                    job_labels[record.job_id] = Modality.COUPLED
                elif record.queue_name == "interactive":
                    job_labels[record.job_id] = Modality.VIZ
                elif record.account in self.known_community_accounts:
                    job_labels[record.job_id] = Modality.GATEWAY
                elif in_burst:
                    job_labels[record.job_id] = Modality.ENSEMBLE
                else:
                    residual.append(record)
            if residual:
                residual_label = _split_residual(view, residual, config)
                for record in residual:
                    job_labels[record.job_id] = residual_label
            identity_modalities[identity] = {
                job_labels[r.job_id] for r in ordered
            }
            identity_primary[identity] = _pick_primary(view, job_labels)
        return Classification(
            job_labels=job_labels,
            identity_modalities=identity_modalities,
            identity_primary=identity_primary,
            views=views,
        )

    def _detect_coupled(self, ordered: list[UsageRecord]) -> set[int]:
        """Job ids whose starts coincide across distinct resources.

        The structural fingerprint of a co-allocated run: the same user's
        jobs starting within ``coupled_start_epsilon`` of each other on
        different machines with the same requested walltime.
        """
        started = [r for r in ordered if r.ran]
        started.sort(key=lambda r: (r.start_time, r.job_id))
        coupled: set[int] = set()
        epsilon = self.config.coupled_start_epsilon
        i = 0
        while i < len(started):
            group = [started[i]]
            j = i + 1
            while (
                j < len(started)
                and started[j].start_time - started[i].start_time <= epsilon
                and started[j].requested_walltime
                == started[i].requested_walltime
            ):
                group.append(started[j])
                j += 1
            if len({r.resource for r in group}) >= 2:
                coupled.update(r.job_id for r in group)
            i = j if j > i + 1 else i + 1
        return coupled
