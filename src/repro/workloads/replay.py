"""Trace replay: drive a scheduler from recorded workloads.

The complement of :mod:`repro.workloads.swf`: reconstruct jobs from usage
records (simulated or parsed from an archived SWF trace) and re-submit them
against any scheduler policy.  This is how policy studies are run on *real*
workloads — e.g. replaying a Parallel Workloads Archive trace under both
FCFS and EASY instead of trusting the synthetic generator.

Replayed runtimes are the recorded elapsed times; walltimes are the recorded
requests; jobs that never ran in the source trace (cancelled while pending)
are skipped, since their runtimes are unknown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.infra.accounting import UsageRecord
from repro.infra.job import Job, JobState
from repro.infra.scheduler.base import BatchScheduler
from repro.sim import Simulator

__all__ = ["ReplayResult", "arrivals_from_records", "replay"]


def arrivals_from_records(
    records: Iterable[UsageRecord],
    max_cores: Optional[int] = None,
) -> list[tuple[float, Job]]:
    """Rebuild ``(submit_time, job)`` pairs from usage records.

    ``max_cores`` clips jobs to a smaller replay machine (a standard trick
    when replaying a big machine's trace on a scaled-down model); jobs are
    clipped, not dropped, to preserve the arrival process.
    """
    arrivals: list[tuple[float, Job]] = []
    for record in sorted(records, key=lambda r: (r.submit_time, r.job_id)):
        if not record.ran:
            continue
        cores = record.cores if max_cores is None else min(record.cores, max_cores)
        runtime = max(record.elapsed, 1.0)
        walltime = max(record.requested_walltime, runtime)
        arrivals.append(
            (
                record.submit_time,
                Job(
                    user=record.user,
                    account=record.account,
                    cores=cores,
                    walltime=walltime,
                    true_runtime=runtime,
                    will_fail=record.final_state is JobState.FAILED,
                    attributes=dict(record.attributes),
                ),
            )
        )
    return arrivals


@dataclass
class ReplayResult:
    """Outcome of one replay run."""

    jobs: list[Job] = field(default_factory=list)
    horizon: float = 0.0
    delivered_node_seconds: float = 0.0
    total_nodes: int = 0

    @property
    def utilization(self) -> float:
        if self.horizon <= 0 or self.total_nodes == 0:
            return 0.0
        return self.delivered_node_seconds / (self.total_nodes * self.horizon)

    def median_wait(self) -> float:
        waits = sorted(
            j.wait_time for j in self.jobs if j.wait_time is not None
        )
        if not waits:
            return 0.0
        return waits[len(waits) // 2]


def replay(
    sim: Simulator,
    scheduler: BatchScheduler,
    arrivals: list[tuple[float, Job]],
    horizon: Optional[float] = None,
) -> ReplayResult:
    """Submit ``arrivals`` at their recorded times and run to ``horizon``.

    With ``horizon=None`` the run extends a week past the last arrival so
    the queue can drain.
    """
    if not arrivals:
        raise ValueError("nothing to replay")
    last_arrival = max(when for when, _job in arrivals)
    end = horizon if horizon is not None else last_arrival + 7 * 86400.0

    def feeder(sim):
        clock = sim.now
        for when, job in sorted(arrivals, key=lambda p: p[0]):
            if when > clock:
                yield sim.timeout(when - clock)
                clock = when
            scheduler.submit(job)

    sim.process(feeder(sim), name="replay-feeder")
    sim.run(until=end)
    jobs = [job for _when, job in arrivals]
    delivered = sum(
        scheduler.cluster.nodes_for(j.cores)
        * (min(j.end_time, end) - j.start_time)
        for j in jobs
        if j.start_time is not None and j.end_time is not None
    )
    return ReplayResult(
        jobs=jobs,
        horizon=end,
        delivered_node_seconds=delivered,
        total_nodes=scheduler.cluster.nodes,
    )
