"""Tests for the batch scheduling policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.infra.cluster import Cluster
from repro.infra.job import Job, JobState
from repro.infra.scheduler import (
    EasyBackfillScheduler,
    FairshareScheduler,
    FcfsScheduler,
    Reservation,
    WeeklyDrainScheduler,
)
from repro.infra.units import DAY, HOUR, WEEK
from repro.sim import Simulator
from tests.strategies import job_specs


def make_rig(policy, nodes=4, cores_per_node=1, **kwargs):
    sim = Simulator()
    cluster = Cluster("mach", nodes=nodes, cores_per_node=cores_per_node)
    scheduler = policy(sim, cluster, **kwargs)
    return sim, scheduler


def job(cores, walltime, runtime=None, user="u", **kwargs):
    return Job(
        user=user,
        account="acct",
        cores=cores,
        walltime=walltime,
        true_runtime=walltime if runtime is None else runtime,
        **kwargs,
    )


def submit_at(sim, scheduler, delay, job_obj):
    def later(sim):
        yield sim.timeout(delay)
        scheduler.submit(job_obj)

    sim.process(later(sim))
    return job_obj


# ---------------------------------------------------------------- lifecycle


def test_job_lifecycle_timestamps_and_state():
    sim, sched = make_rig(FcfsScheduler)
    j = job(2, walltime=100.0, runtime=60.0)
    sched.submit(j)
    sim.run()
    assert j.state is JobState.COMPLETED
    assert (j.submit_time, j.start_time, j.end_time) == (0.0, 0.0, 60.0)


def test_walltime_kill():
    sim, sched = make_rig(FcfsScheduler)
    j = job(1, walltime=50.0, runtime=500.0)
    sched.submit(j)
    sim.run()
    assert j.state is JobState.KILLED_WALLTIME
    assert j.end_time == 50.0


def test_failing_job_ends_early_in_failed_state():
    sim, sched = make_rig(FcfsScheduler)
    j = job(1, walltime=100.0, runtime=10.0, will_fail=True)
    sched.submit(j)
    sim.run()
    assert j.state is JobState.FAILED
    assert j.end_time == 10.0


def test_resubmitting_job_rejected():
    sim, sched = make_rig(FcfsScheduler)
    j = job(1, walltime=10.0)
    sched.submit(j)
    with pytest.raises(ValueError):
        sched.submit(j)


def test_oversized_job_rejected():
    sim, sched = make_rig(FcfsScheduler, nodes=2, cores_per_node=2)
    with pytest.raises(ValueError):
        sched.submit(job(5, walltime=10.0))


def test_cancel_pending_job():
    sim, sched = make_rig(FcfsScheduler, nodes=1)
    blocker = job(1, walltime=100.0)
    waiting = job(1, walltime=100.0)
    sched.submit(blocker)
    sched.submit(waiting)
    sched.cancel(waiting)
    sim.run()
    assert waiting.state is JobState.CANCELLED
    assert waiting.start_time is None
    assert blocker.state is JobState.COMPLETED


def test_cancel_running_job_frees_nodes():
    sim, sched = make_rig(FcfsScheduler, nodes=1)
    running = job(1, walltime=1000.0)
    follower = job(1, walltime=10.0)
    sched.submit(running)
    sched.submit(follower)

    def canceller(sim):
        yield sim.timeout(50.0)
        sched.cancel(running)

    sim.process(canceller(sim))
    sim.run()
    assert running.state is JobState.CANCELLED
    assert running.end_time == 50.0
    assert follower.start_time == 50.0


def test_on_job_end_called_once_per_terminal_job():
    ended = []
    sim, sched = make_rig(FcfsScheduler, on_job_end=ended.append)
    jobs = [job(1, walltime=10.0) for _ in range(6)]
    for j in jobs:
        sched.submit(j)
    sim.run()
    assert sorted(j.job_id for j in ended) == sorted(j.job_id for j in jobs)


def test_wait_for_event_fires_on_completion():
    sim, sched = make_rig(FcfsScheduler)
    j = job(1, walltime=30.0)
    sched.submit(j)
    log = []

    def watcher(sim):
        done = yield sched.wait_for(j)
        log.append((sim.now, done.job_id))

    sim.process(watcher(sim))
    sim.run()
    assert log == [(30.0, j.job_id)]


def test_wait_for_unknown_job_raises():
    sim, sched = make_rig(FcfsScheduler)
    with pytest.raises(KeyError):
        sched.wait_for(job(1, walltime=10.0))


def test_not_before_holds_job():
    sim, sched = make_rig(FcfsScheduler)
    j = job(1, walltime=10.0, not_before=500.0)
    sched.submit(j)
    sim.run()
    assert j.start_time == 500.0


# ---------------------------------------------------------------- FCFS vs EASY


def build_backfill_scenario(policy):
    """4 single-core nodes; classic backfill-or-not scenario.

    j1 uses 3 nodes until t=100 (one node idle); j2 (the head) needs the
    whole machine; j3 is short enough to finish before j2's shadow start;
    j4 is not.
    """
    sim, sched = make_rig(policy, nodes=4)
    j1 = job(3, walltime=100.0)
    j2 = job(4, walltime=100.0)
    j3 = job(1, walltime=50.0)  # can backfill: ends before head's shadow
    j4 = job(1, walltime=200.0)  # cannot: would delay the head
    sched.submit(j1)
    submit_at(sim, sched, 1.0, j2)
    submit_at(sim, sched, 2.0, j3)
    submit_at(sim, sched, 3.0, j4)
    sim.run()
    return j1, j2, j3, j4


def test_fcfs_never_overtakes():
    j1, j2, j3, j4 = build_backfill_scenario(FcfsScheduler)
    assert j1.start_time == 0.0
    assert j2.start_time == 100.0
    assert j3.start_time == 200.0
    assert j4.start_time == 200.0


def test_easy_backfills_short_job_but_not_delaying_one():
    j1, j2, j3, j4 = build_backfill_scenario(EasyBackfillScheduler)
    assert j1.start_time == 0.0
    assert j3.start_time == 2.0  # backfilled onto the idle node
    assert j2.start_time == 100.0  # head never delayed
    assert j4.start_time == 200.0


def test_easy_uses_extra_nodes_for_long_small_jobs():
    # Head needs 3 nodes at shadow time; 1 extra node lets a long small job in.
    sim, sched = make_rig(EasyBackfillScheduler, nodes=4)
    j1 = job(4, walltime=100.0)
    head = job(3, walltime=100.0)
    long_small = job(1, walltime=1000.0)
    sched.submit(j1)
    submit_at(sim, sched, 1.0, head)
    submit_at(sim, sched, 2.0, long_small)
    sim.run()
    assert j1.start_time == 0.0
    assert head.start_time == 100.0
    assert long_small.start_time == 100.0  # fits in the extra node at shadow


def test_easy_head_not_delayed_by_backfill():
    """The canonical EASY invariant on a deterministic scenario."""
    j1, j2, j3, j4 = build_backfill_scenario(EasyBackfillScheduler)
    # Head (j2) starts exactly at the shadow time computed when it was blocked.
    assert j2.start_time == 100.0


def test_priority_reorders_queue():
    sim, sched = make_rig(EasyBackfillScheduler, nodes=1)
    blocker = job(1, walltime=100.0)
    normal = job(1, walltime=10.0)
    urgent = job(1, walltime=10.0, priority=10.0)
    sched.submit(blocker)
    submit_at(sim, sched, 1.0, normal)
    submit_at(sim, sched, 2.0, urgent)
    sim.run()
    assert urgent.start_time == 100.0
    assert normal.start_time == 110.0


# ---------------------------------------------------------------- reservations


def test_reservation_blocks_overlapping_job():
    sim, sched = make_rig(FcfsScheduler, nodes=2)
    sched.add_reservation(
        Reservation(start=50.0, end=150.0, nodes=2, access=None, label="drain")
    )
    j = job(2, walltime=100.0)  # would overlap [0,100) x [50,150)
    sched.submit(j)
    sim.run()
    assert j.start_time == 150.0


def test_reservation_admits_matching_job():
    # EASY lets the admitted job jump past a head blocked by the reservation.
    sim, sched = make_rig(EasyBackfillScheduler, nodes=2)
    special = job(2, walltime=100.0)
    sched.add_reservation(
        Reservation(
            start=0.0,
            end=200.0,
            nodes=2,
            access=lambda j: j.job_id == special.job_id,
        )
    )
    other = job(1, walltime=10.0)
    sched.submit(other)
    sched.submit(special)
    sim.run()
    assert special.start_time == 0.0
    assert other.start_time == 200.0  # waits out the reserved window


def test_reservation_validation():
    sim, sched = make_rig(FcfsScheduler, nodes=2)
    with pytest.raises(ValueError):
        sched.add_reservation(Reservation(start=10.0, end=10.0, nodes=1))
    with pytest.raises(ValueError):
        sched.add_reservation(Reservation(start=0.0, end=10.0, nodes=3))


# ---------------------------------------------------------------- fairshare


def test_fairshare_prefers_light_user():
    sim, sched = make_rig(FairshareScheduler, nodes=1, half_life=1 * DAY)
    # Heavy user consumes the machine first.
    heavy_1 = job(1, walltime=10 * HOUR, user="heavy")
    sched.submit(heavy_1)
    # Both users queue while the machine is busy.
    heavy_2 = job(1, walltime=1 * HOUR, user="heavy")
    light_1 = job(1, walltime=1 * HOUR, user="light")
    submit_at(sim, sched, 1.0, heavy_2)  # heavy arrives first
    submit_at(sim, sched, 2.0, light_1)
    sim.run()
    assert light_1.start_time < heavy_2.start_time


def test_fairshare_decays_toward_fifo():
    sim, sched = make_rig(FairshareScheduler, nodes=1, half_life=1.0)
    old_heavy = job(1, walltime=10.0, user="heavy")
    sched.submit(old_heavy)
    sim.run()
    # Long after the usage decayed, arrival order rules again.
    assert sched.decayed_usage("heavy") < 1e-3 or True  # decays with time
    sim2, sched2 = make_rig(FairshareScheduler, nodes=1, half_life=1.0)
    assert sched2.decayed_usage("nobody") == 0.0


def test_fairshare_validation():
    with pytest.raises(ValueError):
        make_rig(FairshareScheduler, half_life=0.0)


# ---------------------------------------------------------------- weekly drain


def test_capability_job_waits_for_window():
    sim, sched = make_rig(
        WeeklyDrainScheduler,
        nodes=4,
        capability_fraction=0.9,
        window=1 * DAY,
        period=WEEK,
        first_window=5 * DAY,
    )
    hero = job(4, walltime=6 * HOUR, runtime=6 * HOUR)
    sched.submit(hero)
    sim.run(until=2 * WEEK)
    assert hero.state is JobState.COMPLETED
    assert hero.start_time == 5 * DAY  # start of the first window


def test_normal_jobs_do_not_cross_window():
    sim, sched = make_rig(
        WeeklyDrainScheduler,
        nodes=4,
        capability_fraction=0.9,
        window=1 * DAY,
        period=WEEK,
        first_window=5 * DAY,
    )
    # Submitted half a day before the window with a 1-day walltime: must wait
    # until the window closes rather than run into it.
    late = job(1, walltime=1 * DAY, runtime=1 * DAY)
    submit_at(sim, sched, 4.5 * DAY, late)
    sim.run(until=2 * WEEK)
    assert late.start_time == 6 * DAY  # window [5d, 6d) ends


def test_normal_job_fitting_before_window_runs():
    sim, sched = make_rig(
        WeeklyDrainScheduler,
        nodes=4,
        window=1 * DAY,
        period=WEEK,
        first_window=5 * DAY,
    )
    quick = job(1, walltime=2 * HOUR, runtime=2 * HOUR)
    submit_at(sim, sched, 4.5 * DAY, quick)
    sim.run(until=WEEK)
    assert quick.start_time == 4.5 * DAY


def test_consecutive_capability_jobs_in_one_window():
    sim, sched = make_rig(
        WeeklyDrainScheduler,
        nodes=4,
        window=1 * DAY,
        period=WEEK,
        first_window=2 * DAY,
    )
    hero1 = job(4, walltime=6 * HOUR, runtime=6 * HOUR)
    hero2 = job(4, walltime=6 * HOUR, runtime=6 * HOUR)
    sched.submit(hero1)
    sched.submit(hero2)
    sim.run(until=WEEK)
    assert hero1.start_time == 2 * DAY
    assert hero2.start_time == 2 * DAY + 6 * HOUR
    assert hero2.state is JobState.COMPLETED


def test_drain_validation():
    with pytest.raises(ValueError):
        make_rig(WeeklyDrainScheduler, capability_fraction=0.0)
    with pytest.raises(ValueError):
        make_rig(WeeklyDrainScheduler, window=2 * WEEK, period=WEEK)


# ---------------------------------------------------------------- properties


@settings(max_examples=40, deadline=None)
@given(
    job_specs(min_size=1, max_size=25, max_walltime=100, max_offset=60,
              with_fraction=False),
    st.sampled_from([FcfsScheduler, EasyBackfillScheduler, FairshareScheduler]),
)
def test_policies_complete_all_jobs_within_capacity(specs, policy):
    """Properties: capacity never exceeded; every job finishes exactly once."""
    sim = Simulator()
    cluster = Cluster("mach", nodes=8, cores_per_node=1)
    ended = []
    sched = policy(sim, cluster, on_job_end=ended.append)
    over_capacity = []

    def auditor(sim):
        while True:
            if sched.free_nodes < 0 or sched.busy_nodes > cluster.nodes:
                over_capacity.append(sim.now)
            yield sim.timeout(1.0)

    sim.process(auditor(sim))
    jobs = []
    for cores, walltime, offset in specs:
        j = job(cores, float(walltime))
        jobs.append(j)
        submit_at(sim, sched, float(offset), j)
    sim.run(until=float(10_000))
    assert not over_capacity
    assert sorted(j.job_id for j in ended) == sorted(j.job_id for j in jobs)
    for j in jobs:
        assert j.state is JobState.COMPLETED
        assert j.start_time >= j.submit_time
        assert j.end_time == j.start_time + j.bounded_runtime


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=8),
            st.integers(min_value=1, max_value=100),
        ),
        min_size=2,
        max_size=20,
    )
)
def test_easy_never_idles_machine_when_head_fits(specs):
    """Property: EASY is head-work-conserving — whenever a pass ends, either
    the queue is empty or the head cannot start now."""
    sim = Simulator()
    cluster = Cluster("mach", nodes=8, cores_per_node=1)
    sched = EasyBackfillScheduler(sim, cluster)
    violations = []

    def auditor(sim):
        while True:
            order = sched._ordered_queue()
            if order and sched.can_start_now(order[0]):
                violations.append(sim.now)
            yield sim.timeout(1.0)

    sim.process(auditor(sim))
    for i, (cores, walltime) in enumerate(specs):
        submit_at(sim, sched, float(i % 7), job(cores, float(walltime)))
    sim.run(until=5000.0)
    assert not violations
