"""Experiment plumbing: output container, registry, task plans, campaign cache.

Two execution protocols coexist:

* the classic ``run(**knobs) -> ExperimentOutput`` registry, used by
  ``run_experiment`` — every experiment supports it;
* an optional *task plan* (``register_tasks``): the experiment declares the
  independent units of work it is made of (one per replicate/sweep point),
  a pure ``execute(params)`` that computes one unit, and a deterministic
  ``merge(partials, **knobs)`` that assembles the final output.  The
  parallel runner (:mod:`repro.runner`) fans the tasks out over worker
  processes; ``plan_tasks``/``merge_tasks`` below are its only entry points
  into this module, so serial and parallel execution share one code path
  and produce byte-identical output.

Experiments without a declared plan get a synthesized single-task plan that
wraps their ``run`` function, so the runner can treat every experiment
uniformly (coarse-grained parallelism across experiments at worst).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.workloads import ScenarioResult, run_scenario
from repro.workloads.synthetic import (
    CAMPAIGN_DAYS,
    CAMPAIGN_POPULATION_SCALE,
    CAMPAIGN_SCALE,
    CAMPAIGN_SEED,
    CampaignArtifact,
    CampaignKey,
)

__all__ = [
    "ExperimentOutput",
    "ExperimentTask",
    "TaskPlan",
    "registry",
    "task_plans",
    "campaign_plans",
    "register",
    "register_tasks",
    "register_campaigns",
    "run_experiment",
    "run_via_tasks",
    "plan_tasks",
    "plan_timeout",
    "execute_task",
    "merge_tasks",
    "campaign",
    "campaign_key",
    "task_campaign_keys",
    "CAMPAIGN_STAGE_ID",
    "CAMPAIGN_DAYS",
    "CAMPAIGN_SEED",
]

#: Pseudo experiment id of the runner's stage-1 (simulate-a-campaign) tasks.
CAMPAIGN_STAGE_ID = "__campaign__"


@dataclass
class ExperimentOutput:
    """One regenerated table or figure."""

    experiment_id: str
    title: str
    text: str  # rendered tables / series blocks
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


registry: dict[str, Callable[..., ExperimentOutput]] = {}


def register(experiment_id: str):
    """Decorator: add an experiment ``run`` function to the registry."""

    def wrap(func: Callable[..., ExperimentOutput]):
        if experiment_id in registry:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        registry[experiment_id] = func
        return func

    return wrap


def run_experiment(experiment_id: str, **knobs) -> ExperimentOutput:
    try:
        func = registry[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(registry)}"
        ) from None
    return func(**knobs)


@dataclass(frozen=True)
class ExperimentTask:
    """One independent, cacheable unit of work of an experiment.

    ``params`` must be plain picklable data (they cross the process
    boundary and are hashed into the result-cache key); ``seed`` is the
    master seed the unit simulates with, recorded separately so the cache
    key scheme ``(experiment, params-hash, seed, code-version)`` stays
    explicit even when the seed also appears inside ``params``.
    """

    experiment_id: str
    index: int
    params: dict
    seed: int


@dataclass(frozen=True)
class TaskPlan:
    """A declared decomposition of one experiment into tasks.

    ``timeout`` (wall-clock seconds per task) overrides the runner-level
    ``--task-timeout`` for this experiment's tasks — long fault-injected
    campaigns legitimately need more rope than a quick table regeneration.
    ``None`` defers to the runner's default.
    """

    plan: Callable[..., list[ExperimentTask]]
    execute: Callable[[dict], Any]
    merge: Callable[..., ExperimentOutput]
    timeout: Optional[float] = None


task_plans: dict[str, TaskPlan] = {}


def register_tasks(
    experiment_id: str,
    plan: Callable[..., list[ExperimentTask]],
    execute: Callable[[dict], Any],
    merge: Callable[..., ExperimentOutput],
    timeout: Optional[float] = None,
) -> None:
    """Declare ``experiment_id``'s task decomposition (see module docstring)."""
    if experiment_id in task_plans:
        raise ValueError(f"duplicate task plan for {experiment_id!r}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"{experiment_id}: task timeout must be positive")
    task_plans[experiment_id] = TaskPlan(
        plan=plan, execute=execute, merge=merge, timeout=timeout
    )


def plan_timeout(experiment_id: str) -> Optional[float]:
    """The experiment's declared per-task timeout override (None = defer)."""
    declared = task_plans.get(experiment_id)
    return declared.timeout if declared is not None else None


def _default_plan(experiment_id: str, **knobs) -> list[ExperimentTask]:
    """Synthesized one-task plan for experiments without a declared one."""
    # The seed field is part of the cache key; when the experiment runs on
    # its internal default seed (no knob given) any stable value works —
    # the default itself is code, covered by the code-version key part.
    seed = int(knobs.get("seed", CAMPAIGN_SEED))
    return [
        ExperimentTask(
            experiment_id=experiment_id,
            index=0,
            params=dict(knobs, __whole__=experiment_id),
            seed=seed,
        )
    ]


def plan_tasks(experiment_id: str, **knobs) -> list[ExperimentTask]:
    """The experiment's task list (declared, or the synthesized default)."""
    if experiment_id not in registry:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(registry)}"
        )
    declared = task_plans.get(experiment_id)
    if declared is None:
        return _default_plan(experiment_id, **knobs)
    tasks = declared.plan(**knobs)
    for position, task in enumerate(tasks):
        if task.index != position or task.experiment_id != experiment_id:
            raise ValueError(
                f"{experiment_id}: task {position} declared as "
                f"({task.experiment_id!r}, index={task.index}); plans must "
                "emit their own id with contiguous indices"
            )
    return tasks


def execute_task(task: ExperimentTask) -> Any:
    """Compute one task's partial result (pure; safe in a worker process)."""
    params = dict(task.params)
    stage_key = params.pop(CAMPAIGN_STAGE_ID, None)
    if stage_key is not None:
        return _execute_campaign_stage(
            stage_key, shard_group=params.pop("__shard_group__", None)
        )
    whole = params.pop("__whole__", None)
    if whole is not None:
        return registry[whole](**params)
    return task_plans[task.experiment_id].execute(params)


def merge_tasks(
    experiment_id: str, partials: list, **knobs
) -> ExperimentOutput:
    """Assemble ordered partial results into the experiment's output.

    ``partials`` must be ordered by task index; merge functions are pure in
    that order, which is what makes parallel output byte-identical to
    serial output no matter how the scheduler interleaved the tasks.
    """
    declared = task_plans.get(experiment_id)
    if declared is None:
        (output,) = partials
        return output
    return declared.merge(partials, **knobs)


def run_via_tasks(experiment_id: str, **knobs) -> ExperimentOutput:
    """Serial reference path: plan, execute in index order, merge."""
    tasks = plan_tasks(experiment_id, **knobs)
    partials = [execute_task(task) for task in tasks]
    return merge_tasks(experiment_id, partials, **knobs)


#: In-process campaign memo, keyed by canonical :class:`CampaignKey`.  Holds
#: live :class:`ScenarioResult` objects (no artifact store) or
#: :class:`CampaignArtifact` snapshots (store active) — the two expose the
#: same measurement surface.
#: Sharded-mode resolutions memoize under ``("cells", key)`` — a distinct
#: namespace, because merged artifacts carry cell-strided ids.
_campaign_cache: dict[object, ScenarioResult | CampaignArtifact] = {}

#: :func:`campaign`'s knob names, in :meth:`CampaignKey.make` order.
campaign_key = CampaignKey.make


def campaign(
    days: float = CAMPAIGN_DAYS,
    seed: int = CAMPAIGN_SEED,
    scale: str = CAMPAIGN_SCALE,
    population_scale: float = CAMPAIGN_POPULATION_SCALE,
    gateway_tagging_coverage: float = 1.0,
    gateway_adoption_ramp_days: float = 0.0,
) -> ScenarioResult | CampaignArtifact:
    """The shared campaign, memoized per canonical knob combination.

    Several experiments read different aspects of the same run; the
    in-process memo keeps a serial suite's wall-clock dominated by distinct
    simulations only.  The key is canonicalized (``days=90`` and
    ``days=90.0`` are one campaign), so spelling differences between callers
    can no longer duplicate simulations.

    When an artifact store is active (the parallel runner's two-stage mode,
    :mod:`repro.runner.artifacts`), resolution goes memo → stored
    :class:`CampaignArtifact` → live simulation; a live simulation under an
    active store is serialized back into it so every other process of the
    sweep reuses it instead of re-simulating.
    """
    key = CampaignKey.make(
        days=days,
        seed=seed,
        scale=scale,
        population_scale=population_scale,
        gateway_tagging_coverage=gateway_tagging_coverage,
        gateway_adoption_ramp_days=gateway_adoption_ramp_days,
    )

    from repro.runner import artifacts as artifact_mod
    from repro.workloads import sharding

    if sharding.shard_mode() is not None:
        # Scale tier: resolve through per-cell artifacts and the
        # deterministic merge.  Memoized under a mode-tagged key so a
        # sharded resolution never aliases a legacy whole-campaign entry
        # (their absolute ids differ even though every report agrees).
        memo_key = ("cells", key)
        cached = _campaign_cache.get(memo_key)
        if cached is not None:
            return cached
        merged = sharding.resolve_sharded_campaign(key, artifact_mod.active_store())
        _campaign_cache[memo_key] = merged
        return merged

    cached = _campaign_cache.get(key)
    if cached is not None:
        return cached

    store = artifact_mod.active_store()
    if store is not None:
        artifact = store.load(key)
        if artifact is not None:
            _campaign_cache[key] = artifact
            return artifact

    result = run_scenario(key.config())
    if store is not None:
        artifact_mod.note_simulation()
        artifact = CampaignArtifact.from_result(result, key=key)
        store.save(key, artifact)
        _campaign_cache[key] = artifact
        return artifact
    _campaign_cache[key] = result
    return result


# -- campaign dependencies (the runner's stage-1 planning input) ---------------

campaign_plans: dict[str, Callable[[dict], Any]] = {}


def register_campaigns(
    experiment_id: str, campaigns: Callable[[dict], Any]
) -> None:
    """Declare which campaigns ``experiment_id``'s tasks read.

    ``campaigns(params)`` receives one task's params (``__whole__`` already
    stripped) and returns the :class:`CampaignKey` list that task resolves
    through :func:`campaign`.  The parallel runner uses the declarations to
    simulate each distinct campaign exactly once before fanning measurement
    tasks out; an undeclared (or under-declared) experiment still runs
    correctly — its workers just fall back to live simulation on a store
    miss.
    """
    if experiment_id in campaign_plans:
        raise ValueError(f"duplicate campaign plan for {experiment_id!r}")
    campaign_plans[experiment_id] = campaigns


def task_campaign_keys(task: ExperimentTask) -> tuple[CampaignKey, ...]:
    """The campaigns ``task`` is declared to depend on (() = undeclared)."""
    campaigns = campaign_plans.get(task.experiment_id)
    if campaigns is None:
        return ()
    params = {k: v for k, v in task.params.items() if k != "__whole__"}
    return tuple(campaigns(params))


def _execute_campaign_stage(key_fields: dict, shard_group=None) -> dict:
    """Stage-1 task body: ensure one campaign's artifact exists.

    Runs inside a worker (or inline): resolves :func:`campaign` under the
    stage marker so a live simulation counts as *expected* work rather than
    a dedup miss, and reports whether this process actually simulated.

    ``shard_group`` (scale tier) is ``(group, groups)``: instead of the
    whole campaign, this task simulates the population cells assigned
    round-robin to ``group`` into their per-cell artifacts; stage-2 tasks
    merge on load.  Which cells exist depends only on the campaign key, so
    any grouping yields the same artifacts.
    """
    from repro.runner import artifacts as artifact_mod

    key = CampaignKey.make(**key_fields)
    if shard_group is not None:
        from repro.workloads import sharding

        group, groups = shard_group
        store = artifact_mod.active_store()
        cells = sharding.cell_count(key.population_scale)
        simulated = 0
        with artifact_mod.campaign_stage():
            for cell in range(group, cells, groups):
                cell_key = sharding.CellKey.for_cell(key, cell, cells)
                if store is not None and store.has(cell_key):
                    continue
                artifact = sharding.simulate_cell(key, cell, cells)
                artifact_mod.note_simulation()
                if store is not None:
                    store.save(cell_key, artifact)
                simulated += 1
        return {"campaign": key.asdict(), "simulated": bool(simulated)}
    with artifact_mod.campaign_stage():
        before = artifact_mod.STATS.simulations
        result = campaign(**key.asdict())
        simulated = artifact_mod.STATS.simulations > before
        store = artifact_mod.active_store()
        if store is not None and not store.has(key):
            # A memo hit (e.g. a store-less run earlier in this process, or
            # a forked worker inheriting the parent memo) satisfied the call
            # without writing: stage 1's one job is to leave an artifact
            # behind for stage 2 and future runs, so persist it now.
            if not isinstance(result, CampaignArtifact):
                result = CampaignArtifact.from_result(result, key=key)
            store.save(key, result)
    return {"campaign": key.asdict(), "simulated": simulated}
