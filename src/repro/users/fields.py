"""Fields of science and their relative community sizes.

Weights approximate the 2010 TeraGrid allocation distribution: molecular
biosciences, physics and astronomy dominated usage, with a long tail of
smaller disciplines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FIELDS_OF_SCIENCE", "FIELD_WEIGHTS", "sample_field"]

FIELDS_OF_SCIENCE: tuple[str, ...] = (
    "Molecular Biosciences",
    "Physics",
    "Astronomical Sciences",
    "Chemistry",
    "Materials Research",
    "Atmospheric Sciences",
    "Earth Sciences",
    "Engineering",
    "Computer Science",
    "Social and Economic Sciences",
)

FIELD_WEIGHTS: tuple[float, ...] = (
    0.22,
    0.18,
    0.13,
    0.12,
    0.10,
    0.08,
    0.06,
    0.06,
    0.03,
    0.02,
)

assert abs(sum(FIELD_WEIGHTS) - 1.0) < 1e-9


def sample_field(rng: np.random.Generator) -> str:
    """Draw a field of science from the community distribution."""
    index = rng.choice(len(FIELDS_OF_SCIENCE), p=FIELD_WEIGHTS)
    return FIELDS_OF_SCIENCE[index]
