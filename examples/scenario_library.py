#!/usr/bin/env python
"""Scenario programs: declare a federation, run it, audit it.

Walks the three front-ends of ``repro.scenarios`` on one tour:

1. run a shipped library scenario (an OSG-style opportunistic federation)
   and audit the result with the invariant oracle;
2. declare the same kind of scenario from scratch in the python DSL and
   show that compilation is deterministic;
3. load a scenario from a YAML document and confirm it equals the DSL
   spelling.

Run:  python examples/scenario_library.py

(For the property-based harness over *random* scenarios, see
``python -m repro fuzz --budget 25 --seed 0``.)
"""

import textwrap

from repro.core.modalities import Modality
from repro.scenarios import (
    SCENARIO_LIBRARY,
    FederationDef,
    GatewayFleet,
    ModalityMix,
    OutageRegime,
    ScenarioProgram,
    check_scenario,
    program_from_yaml,
)
from repro.workloads import SiteSpec, run_scenario


def run_library_entry() -> None:
    print("The shipped scenario library:")
    for name in sorted(SCENARIO_LIBRARY):
        program = SCENARIO_LIBRARY[name]()
        print(f"  {name:28s} {program.description}")
    print()

    program = SCENARIO_LIBRARY["osg-opportunistic"]()
    # Library horizons are weeks; a few days make the same point quickly.
    config = program.compile(days=4.0)
    print(f"Running {program.name} for {config.days:g} days "
          f"(seed {config.seed})...")
    result = run_scenario(config)
    outages = sum(len(i.outages) for i in result.injectors)
    print(f"  {len(result.records)} usage records, "
          f"{result.central.total_nu():,.0f} NUs charged, "
          f"{outages} unplanned outages\n")

    report = check_scenario(result)
    print("Invariant oracle verdict:")
    for line in report.summary().splitlines():
        print(f"  {line}")
    assert report.ok, report.violations
    print()


def declare_in_python() -> None:
    print("Declaring a two-site churny federation in the DSL...")
    program = ScenarioProgram(
        name="churny-duo",
        description="two small sites, rack-level churn, ensemble users",
        days=3.0,
        seed=7,
        federation=FederationDef(
            preset=None,
            sites=(
                SiteSpec("tandem-a", 16, 8, 1.0, 1.0e9),
                SiteSpec("tandem-b", 12, 4, 0.8, 6.25e8),
            ),
        ),
        mix=ModalityMix(
            total_users=16,
            weights={Modality.ENSEMBLE: 3.0, Modality.BATCH: 1.0},
        ),
        gateways=GatewayFleet(n_gateways=1, backlog=4),
        outages=OutageRegime(
            site_mtbf_days=0.0,
            partial_mtbf_days=1.0,
            partial_fraction=0.25,
            repair_median_hours=1.0,
            repair_min_hours=0.25,
            repair_max_hours=4.0,
        ),
        scheduler="fcfs",
    )
    # Compilation is pure: the same program always lowers to the same config
    # (and pairing outages with DEFAULT_RECOVERY happens here, by design).
    assert program.compile() == program.compile()
    assert program.compile().recovery is not None

    result = run_scenario(program.compile())
    report = check_scenario(result)
    print(f"  {len(result.records)} records; "
          f"oracle {'ok' if report.ok else 'FAILED'}\n")
    assert report.ok, report.violations


def load_from_yaml() -> None:
    document = textwrap.dedent(
        """
        name: churny-duo-yaml
        days: 3
        seed: 7
        federation:
          sites:
            - {name: tandem-a, nodes: 16, cores_per_node: 8}
            - {name: tandem-b, nodes: 12, cores_per_node: 4,
               nu_per_core_hour: 0.8}
        mix:
          total_users: 16
          weights: {ensemble: 3, batch: 1}
        gateways: {n_gateways: 1, backlog: 4}
        outages: {site_mtbf_days: 0, partial_mtbf_days: 1,
                  partial_fraction: 0.25, repair_median_hours: 1,
                  repair_min_hours: 0.25, repair_max_hours: 4}
        scheduler: fcfs
        """
    )
    print("Loading the same scenario from YAML...")
    program = program_from_yaml(document)
    print(f"  {program.name}: {len(program.federation.specs())} sites, "
          f"{program.mix.total_users} users")
    # YAML and python are two spellings of one validated program; the
    # wan_bandwidth default differs only because the YAML omits it.
    assert program.compile().days == 3.0
    assert program.mix.counts()[Modality.ENSEMBLE] == 12


def main() -> None:
    run_library_entry()
    declare_in_python()
    load_from_yaml()
    print("\nEverything a program describes is replayable: "
          "program + seed = the run.")


if __name__ == "__main__":
    main()
