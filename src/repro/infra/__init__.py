"""The simulated TeraGrid substrate.

Everything the measurement system (:mod:`repro.core`) observes is produced
here: resource-provider sites with batch-scheduled clusters, allocations and
service-unit charging, a central accounting database, a wide-area network,
storage, science gateways, submission interfaces, an information service, a
metascheduler, a co-allocator for tightly-coupled multi-site runs, and a DAG
workflow engine.
"""

from repro.infra.units import (
    HOUR,
    DAY,
    WEEK,
    MINUTE,
    core_hours,
    nu_charge,
)
from repro.infra.job import Job, JobState, SubmissionInterface
from repro.infra.cluster import Cluster
from repro.infra.allocations import Allocation, AllocationLedger, AllocationType
from repro.infra.accounting import CentralAccountingDB, UsageRecord
from repro.infra.amie import (
    AmieIngestEndpoint,
    AmiePacket,
    FaultyTransport,
    IngestRecoveryPolicy,
    PacketFaultRegime,
    QuarantinedPacket,
    ReconciliationReport,
    ResilientAmieFeed,
)
from repro.infra.site import ResourceProvider, SiteDownError
from repro.infra.network import Network, NetworkLink, Transfer
from repro.infra.storage import DataCollection, StorageSystem
from repro.infra.submission import LoginSubmitter, GramSubmitter
from repro.infra.gateway import ScienceGateway
from repro.infra.infoservice import InformationService
from repro.infra.metascheduler import (
    Metascheduler,
    NoEligibleSiteError,
    SelectionStrategy,
)
from repro.infra.workflow import TaskGraph, WorkflowEngine
from repro.infra.coalloc import CoAllocator
from repro.infra.faults import NodeFailureInjector
from repro.infra.resilience import (
    OutageEvent,
    OutagePolicy,
    SiteOutageInjector,
    saved_progress,
)
from repro.infra.pilot import Pilot, PilotManager, PilotTask
from repro.infra.queues import QueueSet, QueueSpec, default_queues
from repro.infra.maintenance import MaintenanceSchedule

__all__ = [
    "Allocation",
    "AllocationLedger",
    "AllocationType",
    "AmieIngestEndpoint",
    "AmiePacket",
    "CentralAccountingDB",
    "FaultyTransport",
    "IngestRecoveryPolicy",
    "PacketFaultRegime",
    "QuarantinedPacket",
    "ReconciliationReport",
    "ResilientAmieFeed",
    "Cluster",
    "CoAllocator",
    "DataCollection",
    "DAY",
    "GramSubmitter",
    "HOUR",
    "InformationService",
    "Job",
    "JobState",
    "LoginSubmitter",
    "MaintenanceSchedule",
    "Metascheduler",
    "MINUTE",
    "Network",
    "NetworkLink",
    "NodeFailureInjector",
    "NoEligibleSiteError",
    "OutageEvent",
    "OutagePolicy",
    "Pilot",
    "PilotManager",
    "PilotTask",
    "QueueSet",
    "QueueSpec",
    "ResourceProvider",
    "default_queues",
    "ScienceGateway",
    "SelectionStrategy",
    "SiteDownError",
    "SiteOutageInjector",
    "StorageSystem",
    "SubmissionInterface",
    "TaskGraph",
    "Transfer",
    "UsageRecord",
    "WEEK",
    "WorkflowEngine",
    "core_hours",
    "nu_charge",
    "saved_progress",
]
