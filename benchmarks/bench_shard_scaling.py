"""Bench: the scale tier — population x shards sweep + kernel wheel check.

Sweeps the campaign population against the unsharded coupled baseline and
the cell-decomposed sharded path, recording wall-clock and deterministic
sim-event throughput per leg into ``results/BENCH_shard_scaling.json``
(the machine-readable convention of the other benches).  In-process the
cells run serially, so every speedup recorded here is *algorithmic* —
decoupling the shared heap and the O(population) per-event scans — not
parallelism; ``--jobs`` multiplies it on multi-core hosts.
"""

import os
import time

from conftest import _write_bench_json

SEED = 9
DAYS = 2.0
SCALES = (0.05, 0.2, 0.5)  # canonical, 4x, 10x population


def _timed(fn):
    from repro.obs import traced_simulation

    with traced_simulation() as tracer:
        started = time.perf_counter()
        result = fn()
        wall = time.perf_counter() - started
    return result, wall, tracer.events_total


def test_shard_scaling():
    from repro.users.population import PopulationSpec
    from repro.workloads.sharding import cell_count, run_scenario_sharded
    from repro.workloads.synthetic import ScenarioConfig, run_scenario

    rows = []
    for scale in SCALES:
        config = ScenarioConfig(
            days=DAYS, seed=SEED, population=PopulationSpec(scale=scale)
        )
        _, legacy_wall, legacy_events = _timed(lambda: run_scenario(config))
        for shards in (1, 4):
            artifact, wall, events = _timed(
                lambda: run_scenario_sharded(config, shards=shards)
            )
            rows.append(
                {
                    "population_scale": scale,
                    "cells": cell_count(scale),
                    "shards": shards,
                    "wall_seconds": round(wall, 3),
                    "sim_events": events,
                    "events_per_second": round(events / wall, 1),
                    "records": len(artifact.records),
                    "legacy_wall_seconds": round(legacy_wall, 3),
                    "legacy_events_per_second": round(
                        legacy_events / legacy_wall, 1
                    ),
                }
            )
    path = _write_bench_json(
        "shard_scaling",
        {
            "bench": "shard_scaling",
            "days": DAYS,
            "seed": SEED,
            "host_cores": os.cpu_count() or 1,
            "rows": rows,
        },
    )
    print(f"\n[archived to {path}]")
    for row in rows:
        print(
            f"scale={row['population_scale']:<5g} cells={row['cells']:<3d} "
            f"shards={row['shards']} wall={row['wall_seconds']:7.2f}s "
            f"eps={row['events_per_second']:9.1f} "
            f"(legacy {row['legacy_wall_seconds']:.2f}s / "
            f"{row['legacy_events_per_second']:.1f} eps)"
        )

    # The tier's acceptance bar: at >=10x the canonical population the
    # sharded path sustains >=2x the coupled baseline's event throughput
    # (measured ~10x; the margin absorbs host noise).
    big = [r for r in rows if r["cells"] >= 10]
    assert big, "sweep never reached the 10x population tier"
    for row in big:
        assert row["events_per_second"] >= 2.0 * row["legacy_events_per_second"], (
            f"sharded throughput regressed: {row['events_per_second']:.0f} eps "
            f"vs legacy {row['legacy_events_per_second']:.0f} eps"
        )


def test_wheel_is_equivalent_and_recorded():
    """The timer wheel must never change results; its throughput effect is
    recorded (it is roughly neutral at canonical heap sizes and exists for
    timeout-dense configurations, so no speed assertion here)."""
    import pickle

    from repro.sim.engine import set_wheel_default
    from repro.users.population import PopulationSpec
    from repro.workloads.sharding import scoped_id_counters
    from repro.workloads.synthetic import CampaignArtifact, ScenarioConfig, run_scenario

    config = ScenarioConfig(
        days=3.0, seed=SEED, population=PopulationSpec(scale=0.05)
    )
    legs = {}
    try:
        for wheel in (False, True):
            set_wheel_default(wheel)
            with scoped_id_counters():
                artifact, wall, events = _timed(
                    lambda: CampaignArtifact.from_result(run_scenario(config))
                )
            legs[wheel] = (pickle.dumps(artifact), wall, events)
    finally:
        set_wheel_default(True)

    assert legs[False][0] == legs[True][0], "wheel changed simulation bytes"
    _write_bench_json(
        "wheel_kernel",
        {
            "bench": "wheel_kernel",
            "days": 3.0,
            "seed": SEED,
            "host_cores": os.cpu_count() or 1,
            "wheel_off": {
                "wall_seconds": round(legs[False][1], 3),
                "events_per_second": round(legs[False][2] / legs[False][1], 1),
            },
            "wheel_on": {
                "wall_seconds": round(legs[True][1], 3),
                "events_per_second": round(legs[True][2] / legs[True][1], 1),
            },
        },
    )
