"""Run the whole experiment suite and assemble one report.

``python -m repro report`` regenerates every registered table/figure and
concatenates them — the programmatic source of EXPERIMENTS.md's measured
sections.  ``fast=True`` substitutes reduced horizons for a minutes-scale
smoke report.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.experiments.base import ExperimentOutput, registry, run_experiment

__all__ = ["FAST_KNOBS", "generate_report"]

#: Reduced-horizon knobs per experiment for smoke reports.
FAST_KNOBS: dict[str, dict] = {
    "T1": {"days": 15.0},
    "T2": {"days": 15.0},
    "T3": {"days": 15.0},
    "T4": {"days": 15.0},
    "T5": {"days": 15.0},
    "T6": {"days": 15.0},
    "T7": {"days": 15.0},
    "T8": {"days": 15.0},
    "F1": {"days": 60.0, "ramp_days": 40.0},
    "F2": {"days": 15.0},
    "F3": {"days": 5.0},
    "F4": {"days": 21.0, "hero_rates": (1, 4)},
    "F5": {"days": 3.0},
    "F6": {"days": 10.0, "coverages": (0.0, 0.5, 1.0)},
    "F7": {"widths": (4, 16)},
    "F8": {"days": 5.0, "width": 60},
    "F9": {"days": 15.0},
    "A1": {"days": 5.0},
    "A2": {"days": 6.0},
    "A3": {"mtbfs_hours": (500.0, 4000.0)},
    "A4": {"days": 6.0, "mtbf_days": (2.0, 0.75)},
    "A5": {"days": 4.0, "regimes": ("hostile",)},
    "R1": {"days": 10.0, "seeds": (1, 2, 3)},
}

_ORDER = [
    "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
    "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
    "A1", "A2", "A3", "A4", "A5", "R1",
]


def generate_report(
    out: TextIO = sys.stdout,
    fast: bool = False,
    only: Optional[list[str]] = None,
    runner=None,
    timings: bool = True,
) -> list[ExperimentOutput]:
    """Run experiments (all, or ``only``) and write their text to ``out``.

    With a :class:`repro.runner.ParallelRunner` as ``runner``, experiment
    tasks fan out across its workers; the report is still assembled in the
    fixed display order from partials merged in task-index order, so its
    bytes do not depend on the worker count.  ``timings=False`` drops the
    per-experiment wall-clock lines — pass it whenever two reports must be
    comparable byte-for-byte (timing is scheduling noise, not a result).
    """
    wanted = [e.upper() for e in only] if only else list(_ORDER)
    missing = [e for e in wanted if e not in registry]
    if missing:
        raise KeyError(f"unknown experiments: {missing}")
    # Anything registered but absent from the display order runs last.
    wanted += [e for e in sorted(registry) if e not in wanted and not only]

    if runner is not None:
        started = time.time()
        outputs = runner.run_many(
            [
                (experiment_id, FAST_KNOBS.get(experiment_id, {}) if fast else {})
                for experiment_id in wanted
            ]
        )
        elapsed = time.time() - started
        for output in outputs:
            out.write(f"{output}\n\n")
        out.flush()
        if timings:
            out.write(f"[{len(wanted)} experiments regenerated in {elapsed:.1f}s]\n")
            out.flush()
        return outputs

    outputs = []
    for experiment_id in wanted:
        knobs = FAST_KNOBS.get(experiment_id, {}) if fast else {}
        started = time.time()
        output = run_experiment(experiment_id, **knobs)
        elapsed = time.time() - started
        outputs.append(output)
        out.write(f"{output}\n")
        if timings:
            out.write(f"[{experiment_id} regenerated in {elapsed:.1f}s]\n")
        out.write("\n")
        out.flush()
    return outputs
