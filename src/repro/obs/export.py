"""Chrome trace-event JSON exporter for both trace domains.

Produces the ``chrome://tracing`` / Perfetto "JSON Object Format": a dict
with a ``traceEvents`` list of complete events (``"ph": "X"``, timestamps
in microseconds).  Two kinds of input map onto it:

* sim-domain process spans from a :class:`~repro.obs.trace.SimTracer` —
  one track (``tid``) per process type, with one simulated second rendered
  as one trace microsecond so multi-day campaigns stay navigable;
* wall-domain span records from a telemetry sidecar — real wall-clock,
  re-based so the earliest span starts at ``ts == 0``.

The exporter is a sink for diagnostics only; nothing under ``results/``
reads it.  :func:`validate_chrome_trace` is the schema check the test
suite and the CI telemetry job run over exported files.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "chrome_trace_from_sidecar",
    "chrome_trace_from_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: Phases we emit / accept: complete spans, instant events, metadata.
_KNOWN_PHASES = {"X", "i", "I", "M"}

#: One simulated second becomes one trace microsecond — campaigns span
#: simulated weeks, and viewers choke on 10^12-microsecond extents.
_SIM_SECONDS_TO_US = 1.0


def chrome_trace_from_tracer(tracer, pid: int = 1) -> dict:
    """Render a :class:`SimTracer`'s process spans as a Chrome trace."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "sim-time"},
        }
    ]
    tids: dict[str, int] = {}
    for kind, name, start, end in tracer.process_spans:
        tid = tids.setdefault(kind, len(tids) + 1)
        events.append(
            {
                "name": name,
                "cat": kind,
                "ph": "X",
                "ts": start * _SIM_SECONDS_TO_US,
                # Open spans (process still alive at teardown) render as
                # zero-length rather than stretching to infinity.
                "dur": ((end - start) if end is not None else 0.0)
                * _SIM_SECONDS_TO_US,
                "pid": pid,
                "tid": tid,
            }
        )
    for kind, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": kind},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"domain": "sim", "events_total": tracer.events_total},
    }


def chrome_trace_from_sidecar(records: list[dict], pid: int = 2) -> dict:
    """Render a telemetry sidecar's wall spans/events as a Chrome trace."""
    spans = [r for r in records if r.get("type") == "span"]
    points = [r for r in records if r.get("type") == "event"]
    starts = [r["start"] for r in spans] + [r["at"] for r in points]
    epoch = min(starts) if starts else 0.0
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "wall-time"},
        }
    ]
    for record in spans:
        args = {
            key: value
            for key, value in record.items()
            if key not in ("type", "name", "start", "duration")
        }
        events.append(
            {
                "name": record["name"],
                "cat": "wall",
                "ph": "X",
                "ts": (record["start"] - epoch) * 1e6,
                "dur": record["duration"] * 1e6,
                "pid": pid,
                "tid": int(record.get("worker", 0)),
                "args": args,
            }
        )
    for record in points:
        args = {
            key: value
            for key, value in record.items()
            if key not in ("type", "name", "at")
        }
        events.append(
            {
                "name": record["name"],
                "cat": "wall",
                "ph": "i",
                "s": "g",
                "ts": (record["at"] - epoch) * 1e6,
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"domain": "wall"},
    }


def write_chrome_trace(trace: dict, path: Path | str) -> Path:
    validate_chrome_trace(trace)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(trace, sort_keys=True), encoding="utf-8")
    return path


def validate_chrome_trace(trace: dict) -> None:
    """Trace-event JSON schema check (raises ``ValueError``)."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("chrome trace must be an object with 'traceEvents'")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}]: not an object")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            raise ValueError(f"traceEvents[{index}]: unknown phase {phase!r}")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"traceEvents[{index}]: missing event name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                raise ValueError(
                    f"traceEvents[{index}]: non-integer {field!r}"
                )
        if phase == "M":
            continue
        if not isinstance(event.get("ts"), (int, float)):
            raise ValueError(f"traceEvents[{index}]: non-numeric 'ts'")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                raise ValueError(
                    f"traceEvents[{index}]: complete event needs 'dur' >= 0"
                )
