"""Events, processes and condition events for the simulation kernel.

The design follows the classic generator-coroutine pattern: a *process* is a
Python generator that ``yield``\\ s :class:`Event` objects.  When a yielded
event triggers, the kernel resumes the generator with the event's value (or
throws the event's exception into it).  A :class:`Process` is itself an
:class:`Event` that triggers when the generator finishes, so processes can
wait on one another and be composed with :class:`AllOf` / :class:`AnyOf`.

Failure semantics: a failed event delivered to at least one waiter is
*defused*; a failed event that nobody handles is re-raised by
:meth:`repro.sim.engine.Simulator.step` so that errors never pass silently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "ConditionEvent",
    "AllOf",
    "AnyOf",
]

# Scheduling priorities: events scheduled at the same simulated time fire in
# priority order, then in scheduling (FIFO) order.  URGENT is used for process
# initialization and interrupts so they preempt same-time timeouts.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event goes through three stages: *pending* (created, not triggered),
    *triggered* (given a value/exception and scheduled on the event heap) and
    *processed* (its callbacks have run).  Events may only trigger once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed", "defused")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False
        #: set when a failure has been delivered to (or absorbed by) a waiter
        self.defused = False

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been given a value or an exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only after triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, if it failed)."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``.

        ``delay`` schedules the callbacks that far in the future; the event
        counts as triggered immediately (it cannot be triggered twice).
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = value
        self._ok = True
        self.sim._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        Waiting processes have the exception thrown into them; if nobody is
        waiting, the simulator raises it at the top level.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        if self._triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._triggered = True
        self._value = exception
        self._ok = False
        self.sim._schedule(self, delay=delay)
        return self

    # -- kernel hooks -------------------------------------------------------
    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: deliver immediately (still at current time).
            callback(self)
        else:
            self.callbacks.append(callback)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        assert callbacks is not None
        for callback in callbacks:
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self._processed
            else ("triggered" if self._triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers automatically after ``delay`` simulated time."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        self._triggered = True
        self._value = value
        sim._schedule(self, delay=self.delay)


class Initialize(Event):
    """Internal event that starts a process at its creation time."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process") -> None:
        super().__init__(sim)
        self._triggered = True
        self.callbacks.append(process._resume)  # type: ignore[union-attr]
        sim._schedule(self, delay=0.0, priority=PRIORITY_URGENT)


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator; triggers (as an event) when the generator returns.

    The generator's ``return`` value becomes the event value.  Exceptions
    escaping the generator fail the event; if no other process is waiting on
    it, the simulation run raises the exception.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Duck-typed tracer slot (see repro.sim.engine): the kernel must not
        # import repro.obs, so hooks guard on the simulator's attribute.
        tracer = getattr(sim, "_tracer", None)
        if tracer is not None:
            tracer.on_process_start(self, sim.now)
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; an interrupted process
        is detached from whatever event it was waiting on.
        """
        if self._triggered:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        interrupt_event = Event(self.sim)
        interrupt_event._triggered = True
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defused = True  # delivered by construction
        interrupt_event.callbacks.append(self._resume)  # type: ignore[union-attr]
        self.sim._schedule(interrupt_event, delay=0.0, priority=PRIORITY_URGENT)

    # -- kernel -------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        # Detach from the event we were waiting for (relevant on interrupts,
        # where the waited-on event is still pending).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._target = None
        self.sim._active_process = self
        tracer = getattr(self.sim, "_tracer", None)
        if tracer is not None:
            tracer.on_resume(self, self.sim.now)
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event.defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            if tracer is not None:
                tracer.on_process_end(self, self.sim.now)
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if tracer is not None:
                tracer.on_process_end(self, self.sim.now)
            self.fail(exc)
            return
        self.sim._active_process = None
        if not isinstance(next_event, Event):
            raise TypeError(
                f"process {self.name!r} yielded a non-event: {next_event!r}"
            )
        if next_event.sim is not self.sim:
            raise RuntimeError("cannot wait on an event from another simulator")
        self._target = next_event
        next_event._add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name!r} {'done' if self._triggered else 'alive'}>"


class ConditionEvent(Event):
    """Base for composite events over a fixed set of child events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise RuntimeError("condition spans multiple simulators")
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            event._add_callback(self._check)

    def _collect(self) -> dict[Event, Any]:
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers when *all* child events have triggered (fails on first failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._collect())


class AnyOf(ConditionEvent):
    """Triggers when *any* child event triggers (fails on first failure)."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self.succeed(self._collect())
