"""Samplers and arrival processes used by the workload models.

All samplers take an explicit :class:`numpy.random.Generator` so callers
control stream identity (see :mod:`repro.sim.rng`).  Heavy-tailed quantities
(runtimes, job sizes, think times) are modelled with bounded lognormals and
Weibulls, the standard choices in the workload-modelling literature
(Lublin & Feitelson, JPDC 2003); arrival processes support diurnal and weekly
intensity modulation via thinning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "bounded_lognormal",
    "bounded_weibull",
    "hyperexponential",
    "zipf_weights",
    "discrete_choice",
    "log2_cores",
    "BufferedGenerator",
    "DiurnalProfile",
    "nonhomogeneous_poisson",
]

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


def bounded_lognormal(
    rng: np.random.Generator,
    median: float,
    sigma: float,
    low: float,
    high: float,
) -> float:
    """A lognormal draw with the given *median*, clipped to ``[low, high]``.

    Parameterizing by the median (``exp(mu)``) keeps workload configs legible:
    "median runtime 2 h, sigma 1.2" reads directly.
    """
    if not (0 < low <= high):
        raise ValueError(f"need 0 < low <= high, got low={low}, high={high}")
    if median <= 0:
        raise ValueError(f"median must be positive, got {median}")
    value = median * math.exp(sigma * rng.standard_normal())
    return min(max(value, low), high)


def bounded_weibull(
    rng: np.random.Generator,
    scale: float,
    shape: float,
    low: float,
    high: float,
) -> float:
    """A Weibull(scale, shape) draw clipped to ``[low, high]``."""
    if scale <= 0 or shape <= 0:
        raise ValueError("scale and shape must be positive")
    value = scale * rng.weibull(shape)
    return min(max(value, low), high)


def hyperexponential(
    rng: np.random.Generator,
    means: Sequence[float],
    weights: Sequence[float],
) -> float:
    """Mixture of exponentials: pick a branch by ``weights``, draw its mean."""
    if len(means) != len(weights) or not means:
        raise ValueError("means and weights must be equal-length, non-empty")
    probs = np.asarray(weights, dtype=float)
    probs = probs / probs.sum()
    branch = rng.choice(len(means), p=probs)
    return float(rng.exponential(means[branch]))


def zipf_weights(n: int, alpha: float = 1.0) -> np.ndarray:
    """Normalized Zipf weights ``k^-alpha`` for ranks ``1..n``.

    Used for skewed popularity (users per gateway, data-collection access).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-alpha
    return weights / weights.sum()


def discrete_choice(rng: np.random.Generator, options: Sequence, weights: Sequence[float]):
    """Pick one of ``options`` with the given (unnormalized) weights."""
    probs = np.asarray(weights, dtype=float)
    total = probs.sum()
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    index = rng.choice(len(options), p=probs / total)
    return options[index]


def log2_cores(
    rng: np.random.Generator,
    min_cores: int,
    max_cores: int,
    mean_log2: float,
    sigma_log2: float,
) -> int:
    """Sample a power-of-two-leaning core count.

    Parallel job sizes cluster at powers of two (Feitelson's workload
    observations); we draw log2(size) from a rounded normal and clip.
    """
    if not (1 <= min_cores <= max_cores):
        raise ValueError("need 1 <= min_cores <= max_cores")
    lo = math.log2(min_cores)
    hi = math.log2(max_cores)
    raw = rng.normal(mean_log2, sigma_log2)
    exponent = int(round(min(max(raw, lo), hi)))
    cores = 2**exponent
    return int(min(max(cores, min_cores), max_cores))


@dataclass(frozen=True)
class DiurnalProfile:
    """Multiplicative intensity modulation over the day and week.

    ``day_amplitude`` in [0, 1): 0 gives a flat profile, 0.6 gives peak-hour
    intensity 1.6x the mean and night-time 0.4x.  ``weekend_factor`` scales
    Saturday/Sunday intensity.  ``peak_hour`` is the local hour of maximum
    intensity.
    """

    day_amplitude: float = 0.5
    weekend_factor: float = 0.6
    peak_hour: float = 15.0

    def intensity(self, t: float) -> float:
        """Relative intensity (mean approximately 1) at simulated second ``t``."""
        hour = (t % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        phase = 2 * math.pi * (hour - self.peak_hour) / 24.0
        factor = 1.0 + self.day_amplitude * math.cos(phase)
        day_index = int(t // SECONDS_PER_DAY) % 7  # day 0 = Monday
        if day_index >= 5:
            factor *= self.weekend_factor
        return max(factor, 0.0)

    @property
    def max_intensity(self) -> float:
        return 1.0 + self.day_amplitude


def nonhomogeneous_poisson(
    rng: np.random.Generator,
    base_rate: float,
    profile: DiurnalProfile | None = None,
    start: float = 0.0,
) -> Iterator[float]:
    """Yield successive arrival times of a (possibly modulated) Poisson process.

    ``base_rate`` is the mean arrival rate (events per second).  With a
    :class:`DiurnalProfile`, arrivals are thinned against the profile's
    intensity (Lewis & Shedler 1979); without one, the process is homogeneous.
    """
    if base_rate <= 0:
        raise ValueError(f"base_rate must be positive, got {base_rate}")
    t = float(start)
    if profile is None:
        while True:
            t += rng.exponential(1.0 / base_rate)
            yield t
    else:
        ceiling = base_rate * profile.max_intensity
        while True:
            t += rng.exponential(1.0 / ceiling)
            if rng.random() <= (base_rate * profile.intensity(t)) / ceiling:
                yield t

# ---------------------------------------------------------------------------
# Vectorized pre-sampling
# ---------------------------------------------------------------------------


class BufferedGenerator:
    """A Generator facade that pre-samples scalar draws in numpy batches.

    User-behavior processes make millions of *scalar* draws (think times,
    runtimes, coin flips), each paying full numpy dispatch overhead.  This
    facade routes every distinct ``(method, args)`` scalar call to its own
    deterministically derived child :class:`numpy.random.Generator` and
    refills a chunk of draws at a time with one vectorized call, relying on
    the numpy guarantee that ``gen.method(*args, size=n)`` produces exactly
    the sequence of ``n`` successive scalar ``gen.method(*args)`` draws.

    Two contracts, enforced by the test suite:

    * *bit-identity*: the draw sequence for a given ``(method, args)`` equals
      sequential scalar draws from the same child generator;
    * *chunk invariance*: results are independent of ``chunk`` (a refill
      boundary is invisible).

    Methods outside the buffered hot set (``choice``, ``weibull``, ...)
    delegate to a dedicated fallback child via ``__getattr__``.
    """

    _FALLBACK_KEY = "fallback"

    def __init__(self, seed: int, chunk: int = 256) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self._seed = int(seed)
        self._chunk = int(chunk)
        # (method, args) -> [values array, cursor, child generator]
        self._buffers: dict[tuple, list] = {}
        self._fallback: np.random.Generator | None = None

    def _child(self, label: str) -> np.random.Generator:
        from repro.sim.rng import derive_seed

        return np.random.Generator(
            np.random.PCG64(np.random.SeedSequence(derive_seed(self._seed, label)))
        )

    def _next(self, method: str, args: tuple):
        key = (method, args)
        state = self._buffers.get(key)
        if state is None:
            child = self._child(f"{method}:{args!r}")
            state = self._buffers[key] = [None, 0, child]
        values, cursor, child = state
        if values is None or cursor >= len(values):
            values = getattr(child, method)(*args, size=self._chunk)
            state[0] = values
            cursor = 0
        state[1] = cursor + 1
        return values[cursor]

    # -- buffered hot set (scalar signatures only) ---------------------------
    def random(self):
        return self._next("random", ())

    def standard_normal(self):
        return self._next("standard_normal", ())

    def exponential(self, scale=1.0):
        return self._next("exponential", (float(scale),))

    def uniform(self, low=0.0, high=1.0):
        return self._next("uniform", (float(low), float(high)))

    def normal(self, loc=0.0, scale=1.0):
        return self._next("normal", (float(loc), float(scale)))

    def integers(self, low, high=None):
        if high is None:
            return self._next("integers", (int(low),))
        return self._next("integers", (int(low), int(high)))

    # -- everything else ------------------------------------------------------
    def __getattr__(self, name: str):
        if self._fallback is None:
            self._fallback = self._child(self._FALLBACK_KEY)
        return getattr(self._fallback, name)
