"""Strict first-come first-served scheduling.

The baseline policy: jobs start in arrival order; if the head does not fit,
nothing behind it may start.  Simple, starvation-free, and famously wasteful
for mixed workloads — the backfill comparison in experiment F3 quantifies
exactly that.
"""

from __future__ import annotations

from repro.infra.scheduler.base import BatchScheduler

__all__ = ["FcfsScheduler"]


class FcfsScheduler(BatchScheduler):
    """Start the queue head whenever it fits; never look past it."""

    def _policy_pass(self) -> None:
        while self.queue:
            head = self._ordered_queue()[0]
            if not self.can_start_now(head):
                return
            self._start(head)
