"""Building the user community and its allocations.

The population is the ground truth: every user gets exactly one (primary)
modality, drawn in the proportions of the paper-era TeraGrid community
(DESIGN.md §3), scaled by ``PopulationSpec.scale`` so tests run in seconds
and benchmarks in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.modalities import MODALITY_ORDER, Modality
from repro.infra.allocations import AllocationLedger, AllocationType
from repro.infra.site import ResourceProvider
from repro.users.fields import sample_field

__all__ = ["User", "PopulationSpec", "Population", "build_population", "cell_members"]

#: 2010-era user counts per modality (shape targets; see DESIGN.md §3).
BASE_USER_COUNTS: dict[Modality, int] = {
    Modality.BATCH: 850,
    Modality.EXPLORATORY: 650,
    Modality.GATEWAY: 500,
    Modality.ENSEMBLE: 250,
    Modality.VIZ: 35,
    Modality.COUPLED: 10,
}

DEFAULT_GATEWAY_NAMES: tuple[str, ...] = (
    "nanohub",
    "cipres",
    "ccsm_portal",
    "geongrid",
)

#: Each gateway serves one domain; its community award carries that field.
GATEWAY_FIELDS: dict[str, str] = {
    "nanohub": "Materials Research",
    "cipres": "Molecular Biosciences",
    "ccsm_portal": "Atmospheric Sciences",
    "geongrid": "Earth Sciences",
}


@dataclass(frozen=True)
class User:
    """One community member (ground truth)."""

    user_id: str
    modality: Modality
    field: str
    account: str
    home_site: str
    gateway: Optional[str] = None

    @property
    def identity(self) -> str:
        """The identity key instrumented measurement should recover."""
        if self.gateway is not None:
            return f"{self.gateway}:{self.user_id}"
        return self.user_id


@dataclass(frozen=True)
class PopulationSpec:
    """How large a community to build.

    ``scale`` multiplies the base per-modality counts; explicit ``counts``
    override them entirely.  Small modalities are floored at 1 user so every
    modality is represented at any scale.
    """

    scale: float = 0.1
    counts: Optional[dict[Modality, int]] = None
    n_gateways: int = 3
    startup_budget_nu: float = 3.0e4
    research_budget_nu: float = 1.0e6
    community_budget_nu: float = 5.0e6

    def user_counts(self) -> dict[Modality, int]:
        if self.counts is not None:
            return {m: int(self.counts.get(m, 0)) for m in MODALITY_ORDER}
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        return {
            m: max(int(round(BASE_USER_COUNTS[m] * self.scale)), 1)
            for m in MODALITY_ORDER
        }


@dataclass
class Population:
    """The built community plus its ground-truth maps."""

    users: list[User] = field(default_factory=list)
    gateway_names: list[str] = field(default_factory=list)
    #: gateway name -> (community user, community account)
    community_accounts: dict[str, tuple[str, str]] = field(default_factory=dict)

    @property
    def truth_by_identity(self) -> dict[str, Modality]:
        return {user.identity: user.modality for user in self.users}

    def users_of(self, modality: Modality) -> list[User]:
        return [u for u in self.users if u.modality is modality]

    def true_user_counts(self) -> dict[Modality, int]:
        counts = {m: 0 for m in MODALITY_ORDER}
        for user in self.users:
            counts[user.modality] += 1
        return counts

    def __len__(self) -> int:
        return len(self.users)


def build_population(
    spec: PopulationSpec,
    rng: np.random.Generator,
    providers: Sequence[ResourceProvider],
    ledger: AllocationLedger,
) -> Population:
    """Create users, allocations and community accounts.

    * Non-gateway users get their own allocation: a RESEARCH award for
      batch/ensemble/viz/coupled users, a STARTUP award for exploratory
      users (porting is what startup allocations were for).
    * Gateway end users hold no allocation at all; each gateway gets one
      COMMUNITY allocation shared by its whole user base.
    * Home sites are drawn proportionally to machine size (bigger machines
      attract more users).
    """
    if not providers:
        raise ValueError("population needs at least one provider")
    if spec.n_gateways < 1:
        raise ValueError("need at least one gateway")
    population = Population()

    site_names = [p.name for p in providers]
    site_weights = np.array(
        [p.cluster.total_cores for p in providers], dtype=float
    )
    site_weights /= site_weights.sum()

    def pick_site() -> str:
        return site_names[int(rng.choice(len(site_names), p=site_weights))]

    # Gateways and their community accounts.
    names = list(DEFAULT_GATEWAY_NAMES)
    while len(names) < spec.n_gateways:
        names.append(f"gateway{len(names)}")
    gateway_names = names[: spec.n_gateways]
    population.gateway_names = gateway_names
    for gateway in gateway_names:
        community_user = f"gw_{gateway}"
        account = f"TG-COMM-{gateway.upper()}"
        ledger.create(
            account,
            AllocationType.COMMUNITY,
            spec.community_budget_nu,
            users={community_user},
            field_of_science=GATEWAY_FIELDS.get(gateway, "Computer Science"),
        )
        population.community_accounts[gateway] = (community_user, account)

    # Gateway popularity is heavy-tailed (nanoHUB alone served most users).
    gateway_weights = np.array(
        [1.0 / (rank + 1) for rank in range(len(gateway_names))]
    )
    gateway_weights /= gateway_weights.sum()

    counts = spec.user_counts()
    serial = 0
    for modality in MODALITY_ORDER:
        for _ in range(counts[modality]):
            serial += 1
            user_id = f"u{serial:05d}"
            field_of_science = sample_field(rng)
            home_site = pick_site()
            if modality is Modality.GATEWAY:
                gateway = gateway_names[
                    int(rng.choice(len(gateway_names), p=gateway_weights))
                ]
                population.users.append(
                    User(
                        user_id=user_id,
                        modality=modality,
                        field=field_of_science,
                        account=population.community_accounts[gateway][1],
                        home_site=home_site,
                        gateway=gateway,
                    )
                )
                continue
            kind = (
                AllocationType.STARTUP
                if modality is Modality.EXPLORATORY
                else AllocationType.RESEARCH
            )
            budget = (
                spec.startup_budget_nu
                if kind is AllocationType.STARTUP
                else spec.research_budget_nu
            )
            account = f"TG-{user_id.upper()}"
            ledger.create(
                account,
                kind,
                budget,
                users={user_id},
                field_of_science=field_of_science,
            )
            population.users.append(
                User(
                    user_id=user_id,
                    modality=modality,
                    field=field_of_science,
                    account=account,
                    home_site=home_site,
                )
            )
    return population


def cell_members(population: Population, cell: int, cells: int) -> frozenset[int]:
    """Ordinals (indices into ``population.users``) active in one scale-tier cell.

    Users are assigned round-robin by ordinal, so the cells partition the
    population exactly and — because :func:`build_population` lays users out
    modality block by modality block — every cell samples every modality.
    """
    if not 0 <= cell < cells:
        raise ValueError(f"cell must be in [0, {cells}), got {cell}")
    return frozenset(
        index for index in range(len(population.users)) if index % cells == cell
    )
