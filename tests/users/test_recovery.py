"""Recovery policies: checkpoint arithmetic bounds and behaviour wiring.

The property test holds :func:`repro.infra.resilience.saved_progress` — the
one checkpoint formula shared by the A3 campaign loop and every per-modality
recovery path — to the loss bound the A3/A4 write-ups claim: work lost to a
single failure never exceeds one checkpoint interval, so the total penalty
per failure is bounded by ``checkpoint_interval + restart_overhead``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.modalities import Modality
from repro.infra.resilience import OutagePolicy, saved_progress
from repro.infra.units import DAY, HOUR, MINUTE
from repro.users.behavior import DEFAULT_RECOVERY, RecoveryPolicy, no_recovery
from repro.workloads.synthetic import ScenarioConfig, run_scenario


# -- saved_progress properties ---------------------------------------------

@given(
    elapsed=st.floats(min_value=0.0, max_value=1e8, allow_nan=False),
    interval=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
)
def test_loss_per_failure_is_bounded_by_one_interval(elapsed, interval):
    saved = saved_progress(elapsed, interval)
    assert 0.0 <= saved <= elapsed
    lost = elapsed - saved
    assert lost < interval or lost == pytest.approx(interval)
    # Saved progress is an integer number of intervals.
    assert saved == (elapsed // interval) * interval


@given(
    elapsed=st.floats(min_value=0.0, max_value=1e8, allow_nan=False),
    interval=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
    overhead=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
)
def test_total_penalty_bounded_by_interval_plus_overhead(
    elapsed, interval, overhead
):
    """Redone work + restart overhead <= checkpoint_interval + overhead."""
    lost = elapsed - saved_progress(elapsed, interval)
    penalty = lost + overhead
    assert penalty <= interval + overhead + 1e-6 * interval


@given(
    a=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    b=st.floats(min_value=0.0, max_value=1e7, allow_nan=False),
    interval=st.floats(min_value=1.0, max_value=1e6, allow_nan=False),
)
def test_saved_progress_is_monotone_in_elapsed(a, b, interval):
    lo, hi = sorted((a, b))
    assert saved_progress(lo, interval) <= saved_progress(hi, interval)


def test_saved_progress_edge_cases():
    assert saved_progress(12345.0, None) == 0.0  # no checkpointing
    assert saved_progress(0.0, 3600.0) == 0.0
    assert saved_progress(-5.0, 3600.0) == 0.0
    assert saved_progress(7200.0, 3600.0) == 7200.0  # exact boundary
    with pytest.raises(ValueError):
        saved_progress(10.0, 0.0)


# -- policy objects --------------------------------------------------------

def test_backoff_grows_geometrically():
    policy = RecoveryPolicy(backoff_base=10 * MINUTE, backoff_factor=2.0)
    assert policy.backoff(1) == 10 * MINUTE
    assert policy.backoff(2) == 20 * MINUTE
    assert policy.backoff(3) == 40 * MINUTE


def test_default_recovery_covers_every_modality():
    assert set(DEFAULT_RECOVERY) == set(Modality)
    assert set(no_recovery()) == set(Modality)
    # Capability (coupled) work is the checkpointing modality.
    assert DEFAULT_RECOVERY[Modality.COUPLED].checkpoint_interval is not None
    for policy in no_recovery().values():
        assert not policy.resubmit and policy.max_attempts == 1


# -- behaviour wiring under outages ----------------------------------------

def _resilient_scenario(recovery, seed=5):
    return run_scenario(
        ScenarioConfig(
            scale="small",
            days=3.0,
            seed=seed,
            outages=OutagePolicy(site_mtbf=1 * DAY, partial_mtbf=2 * DAY),
            recovery=recovery,
            gateway_backlog=16,
        )
    )


@pytest.mark.slow
def test_recovery_policies_resubmit_and_cut_abandonment():
    give_up = _resilient_scenario(no_recovery())
    retry = _resilient_scenario(DEFAULT_RECOVERY)
    assert sum(i.outage_count for i in give_up.injectors) > 0
    # Giving up on first failure must abandon work; retrying must resubmit.
    assert sum(give_up.context.abandonments.values()) > 0
    assert sum(retry.context.resubmissions.values()) > 0
    assert (
        sum(retry.context.abandonments.values())
        < sum(give_up.context.abandonments.values())
    )


@pytest.mark.slow
def test_recovery_runs_are_seed_stable():
    first = _resilient_scenario(DEFAULT_RECOVERY, seed=8)
    second = _resilient_scenario(DEFAULT_RECOVERY, seed=8)
    assert first.context.resubmissions == second.context.resubmissions
    assert first.context.abandonments == second.context.abandonments
    assert [
        (o.kind, o.start) for i in first.injectors for o in i.outages
    ] == [(o.kind, o.start) for i in second.injectors for o in i.outages]
    a = sorted((r.job_id, r.charged_nu) for r in first.records)
    b = sorted((r.job_id, r.charged_nu) for r in second.records)
    assert len(a) == len(b)
    assert [nu for _id, nu in a] == pytest.approx([nu for _id, nu in b])
